// Structural metrics over a topology: bucket fill, hop-count distribution,
// routing success, reachability. Used by the overlay test-suite and by the
// ablation benches to report the connection-maintenance overhead that §V
// identifies as the cost of larger k.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "overlay/topology.hpp"

namespace fairswap::overlay {

/// Aggregate routing-quality measurements from sampled routes.
struct RoutingQuality {
  std::size_t samples{0};
  std::size_t reached{0};       ///< routes that ended at the true storer
  std::size_t truncated{0};     ///< routes cut by the hop limit
  RunningStats hop_stats;       ///< hops over all sampled routes
  std::vector<std::uint64_t> hop_histogram;  ///< index = hop count

  [[nodiscard]] double success_rate() const noexcept {
    return samples
               ? static_cast<double>(reached) / static_cast<double>(samples)
               : 0.0;
  }
};

/// Routes `samples` random (origin, target) pairs and aggregates hop
/// counts and success. Deterministic given `rng`.
[[nodiscard]] RoutingQuality measure_routing(const Topology& topo, Rng& rng,
                                             std::size_t samples);

/// Per-bucket occupancy across all nodes: entry b = average fill of bucket
/// b (0..1 relative to its capacity).
[[nodiscard]] std::vector<double> bucket_fill(const Topology& topo);

/// Fraction of ordered node pairs (a, b) where b is reachable from a by
/// following "knows" edges (BFS). 1.0 means the knows-graph is strongly
/// connected.
[[nodiscard]] double reachability(const Topology& topo);

/// Count of directed knows-edges per node (out-degree == table size) —
/// the "open connections" cost of larger k that §V discusses.
[[nodiscard]] std::vector<std::uint64_t> out_degrees(const Topology& topo);

}  // namespace fairswap::overlay
