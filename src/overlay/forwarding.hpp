// Forwarding Kademlia — Swarm's routing scheme (paper §III-A, Fig. 1).
//
// The originator forwards a request to the peer in its table closest to the
// chunk address; every relay repeats the step. The chunk then flows back
// along the same path. No relay learns who originated the request, which is
// the privacy property distinguishing forwarding Kademlia from the classic
// iterative lookup (see iterative.hpp for the contrast).
#pragma once

#include <cstdint>
#include <vector>

#include "common/address.hpp"
#include "overlay/topology.hpp"

namespace fairswap::overlay {

/// Identifier of a directed peer edge in the compiled router's CSR arena
/// (an index into its peer slabs). kNoEdge marks "not resolved" — routes
/// produced by the Address-keyed reference walk carry no edge ids.
using EdgeId = std::uint32_t;
inline constexpr EdgeId kNoEdge = 0xFFFFFFFFu;

/// The trace of one routed chunk request.
struct Route {
  /// Nodes on the path, originator first. The last entry is the node where
  /// greedy forwarding terminated (no strictly-closer peer known).
  std::vector<NodeIndex> path;
  /// Compiled-router arena ids of the traversed edges: edges[i] is the
  /// directed table edge path[i] -> path[i+1]. Filled only by the compiled
  /// walks (then edges.size() == hops()); empty on the reference walk.
  /// The edge ledger resolves its balance slot from these ids instead of
  /// hashing the node pair per hop.
  std::vector<EdgeId> edges;
  /// Address the route was aiming for.
  Address target{};
  /// True if the terminal node is the globally closest node to `target`,
  /// i.e. the node that stores the chunk under the paper's placement rule.
  bool reached_storer{false};
  /// True if the walk was cut off by the hop limit (pathological tables).
  bool truncated{false};

  /// Number of edges traversed (path.size() - 1; 0 when the originator
  /// already stores the chunk).
  [[nodiscard]] std::size_t hops() const noexcept {
    return path.empty() ? 0 : path.size() - 1;
  }

  /// Clears the route for reuse toward a new target, keeping the path
  /// buffer's capacity — the routing hot path routes millions of chunks
  /// and must not allocate per request.
  void reset(Address new_target) noexcept {
    path.clear();
    edges.clear();
    target = new_target;
    reached_storer = false;
    truncated = false;
  }

  /// Arena id of the edge path[i] -> path[i+1], or kNoEdge when this route
  /// carries no edge ids (reference walk, hand-built test routes).
  [[nodiscard]] EdgeId edge(std::size_t i) const noexcept {
    return i < edges.size() ? edges[i] : kNoEdge;
  }

  [[nodiscard]] NodeIndex originator() const noexcept { return path.front(); }
  [[nodiscard]] NodeIndex terminal() const noexcept { return path.back(); }

  /// The zero-proximity node: the first hop, i.e. the peer in the
  /// originator's routing table closest to the target. This is the only
  /// node the originator pays under Swarm's default settlement behaviour
  /// (paper §III-B). Returns originator() when hops() == 0.
  [[nodiscard]] NodeIndex first_hop() const noexcept {
    return path.size() > 1 ? path[1] : path.front();
  }
};

/// Stateless greedy router over a Topology.
class ForwardingRouter {
 public:
  /// `max_hops` bounds route length; 4x the address bits is far beyond any
  /// reachable route (each hop increases the shared prefix), so hitting it
  /// indicates a broken table and is flagged via Route::truncated.
  explicit ForwardingRouter(const Topology& topo,
                            std::size_t max_hops = 0) noexcept;

  /// Routes from `origin` toward `target`, stopping at the storer (global
  /// closest node) or at a local minimum of the greedy walk.
  [[nodiscard]] Route route(NodeIndex origin, Address target) const;

  /// Allocation-free variant: writes into `out` (resetting it first), so a
  /// caller looping over many chunks can reuse one path buffer.
  void route_into(NodeIndex origin, Address target, Route& out) const;

  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

 private:
  const Topology* topo_;
  std::size_t max_hops_;
};

}  // namespace fairswap::overlay
