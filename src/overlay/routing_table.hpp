// Kademlia prefix-bucket routing tables.
//
// A node with address `self` files every other known peer under the bucket
// indexed by the first bit in which the peer's address differs from self's
// (equivalently, their proximity order). Bucket 0 covers roughly half the
// network (peers whose first bit differs), bucket 1 a quarter, and so on
// (paper §III-A, Fig. 3). Each bucket holds at most k peers; Swarm defaults
// to k = 4, the original Kademlia paper recommends k = 20 — this very
// parameter is the subject of the paper's evaluation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/address.hpp"

namespace fairswap::overlay {

/// Per-bucket capacity configuration. `bucket_capacity(i)` returns the
/// capacity of bucket i, allowing the §V "increase k only for bucket zero"
/// ablation.
struct BucketPolicy {
  /// Default capacity applied to every bucket.
  std::size_t k{4};
  /// Optional override for bucket 0 only (0 = no override). The paper's
  /// discussion asks "what happens in payment distribution if we only
  /// increase the k for a particular bucket, e.g., bucket zero".
  std::size_t k_bucket0{0};

  [[nodiscard]] std::size_t capacity(int bucket) const noexcept {
    if (bucket == 0 && k_bucket0 > 0) return k_bucket0;
    return k;
  }

  friend bool operator==(const BucketPolicy&, const BucketPolicy&) = default;
};

/// A routing table: `bits` buckets of at most k peers each, plus the
/// owner's address. Tables are plain values; the topology builder
/// constructs one per node and keeps them static for a whole experiment
/// (paper: "routing tables remain static for the entirety of the
/// experiments").
class RoutingTable {
 public:
  RoutingTable(AddressSpace space, Address self, BucketPolicy policy);

  [[nodiscard]] Address self() const noexcept { return self_; }
  [[nodiscard]] const AddressSpace& space() const noexcept { return space_; }
  [[nodiscard]] const BucketPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] int bucket_count() const noexcept { return space_.bits(); }

  /// Attempts to add a peer. Returns false (and does not modify the table)
  /// if the peer equals self, is already present, or its bucket is full.
  bool try_add(Address peer);

  /// True if `peer` is in the table.
  [[nodiscard]] bool contains(Address peer) const noexcept;

  /// Peers in bucket `b` (unordered).
  [[nodiscard]] std::span<const Address> bucket(int b) const noexcept;

  /// Number of peers in bucket `b` / in the whole table.
  [[nodiscard]] std::size_t bucket_size(int b) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// The peer in this table strictly closest (XOR) to `target`, excluding
  /// self. Returns nullopt for an empty table. Ties are broken toward the
  /// numerically smaller address so routing is deterministic.
  [[nodiscard]] std::optional<Address> closest_peer(
      Address target) const noexcept;

  /// Like closest_peer but only returns a peer that is strictly closer to
  /// `target` than this table's owner — the forwarding-Kademlia step.
  ///
  /// Implementation note: this is the simulator's hottest operation, so it
  /// prunes by bucket structure instead of scanning the whole table. With
  /// L = the first bit where self and target differ: peers in bucket L
  /// match the target at bit L and are therefore strictly closer than both
  /// self and every other bucket's peers; if bucket L is empty, only
  /// deeper buckets can still hold a strictly closer peer. Equivalence
  /// with the naive scan is enforced by property tests.
  [[nodiscard]] std::optional<Address> next_hop(Address target) const noexcept;

  /// Reference implementation of next_hop (full linear scan). Used by the
  /// property tests that validate the pruned fast path.
  [[nodiscard]] std::optional<Address> next_hop_naive(
      Address target) const noexcept;

  /// Up to `count` table peers closest to `target`, ascending by distance.
  /// Used by the iterative-lookup baseline.
  [[nodiscard]] std::vector<Address> closest_peers(Address target,
                                                   std::size_t count) const;

  /// The neighborhood depth: the shallowest bucket index d such that all
  /// buckets deeper than d hold fewer than `min_peers` peers. Swarm defines
  /// the neighborhood as "the proximity at which the node cannot connect
  /// to at least four other nodes" (paper §III-A).
  [[nodiscard]] int neighborhood_depth(
      std::size_t min_peers = 4) const noexcept;

  /// All peers across all buckets (bucket order; used for audits/metrics).
  [[nodiscard]] std::vector<Address> all_peers() const;

  /// Renders the table in the style of the paper's Fig. 3 (binary
  /// addresses grouped per bucket).
  [[nodiscard]] std::string render() const;

 private:
  AddressSpace space_;
  Address self_;
  BucketPolicy policy_;
  std::vector<std::vector<Address>> buckets_;
};

}  // namespace fairswap::overlay
