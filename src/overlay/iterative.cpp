#include "overlay/iterative.hpp"

#include <algorithm>
#include <unordered_set>

namespace fairswap::overlay {

IterativeLookup::IterativeLookup(const Topology& topo,
                                 IterativeConfig config) noexcept
    : topo_(&topo), config_(config) {}

LookupResult IterativeLookup::lookup(NodeIndex requester,
                                     Address target) const {
  LookupResult result;
  const NodeIndex storer = topo_->closest_node(target);

  auto dist = [&](NodeIndex n) {
    return xor_distance(topo_->address_of(n), target);
  };
  auto closer = [&](NodeIndex a, NodeIndex b) {
    const auto da = dist(a);
    const auto db = dist(b);
    return da != db ? da < db : a < b;
  };

  // Shortlist seeded from the requester's own table.
  std::vector<NodeIndex> shortlist;
  for (const Address a :
       topo_->table(requester).closest_peers(target, config_.shortlist)) {
    shortlist.push_back(*topo_->index_of(a));
  }
  std::sort(shortlist.begin(), shortlist.end(), closer);

  // fairswap-lint: allow(unordered-container) -- membership tests only;
  // the shortlist vector (explicitly sorted by XOR distance) carries the
  // deterministic visit order.
  std::unordered_set<NodeIndex> queried;
  // fairswap-lint: allow(unordered-container) -- membership test only,
  // never enumerated.
  std::unordered_set<NodeIndex> known(shortlist.begin(), shortlist.end());
  known.insert(requester);

  bool progressed = true;
  while (progressed && result.rounds < config_.max_rounds) {
    progressed = false;
    ++result.rounds;

    // Query up to α closest unqueried nodes from the shortlist.
    std::vector<NodeIndex> batch;
    for (NodeIndex n : shortlist) {
      if (batch.size() >= config_.alpha) break;
      if (!queried.count(n)) batch.push_back(n);
    }
    if (batch.empty()) break;

    for (NodeIndex n : batch) {
      queried.insert(n);
      result.contacted.push_back(n);
      ++result.messages;
      for (const Address a :
           topo_->table(n).closest_peers(target, config_.shortlist)) {
        const NodeIndex peer = *topo_->index_of(a);
        if (known.insert(peer).second) {
          shortlist.push_back(peer);
          progressed = true;
        }
      }
    }
    std::sort(shortlist.begin(), shortlist.end(), closer);
    if (shortlist.size() > config_.shortlist) {
      shortlist.resize(config_.shortlist);
    }
  }

  // The best node seen, including the requester itself.
  NodeIndex best = requester;
  for (NodeIndex n : shortlist) {
    if (closer(n, best)) best = n;
  }
  result.closest = best;
  result.found_storer = (best == storer);
  return result;
}

}  // namespace fairswap::overlay
