#include "overlay/graph_metrics.hpp"

#include <queue>

#include "overlay/forwarding.hpp"

namespace fairswap::overlay {

RoutingQuality measure_routing(const Topology& topo, Rng& rng,
                               std::size_t samples) {
  RoutingQuality q;
  const ForwardingRouter router(topo);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto origin = static_cast<NodeIndex>(rng.index(topo.node_count()));
    const Address target{
        static_cast<AddressValue>(rng.next_below(topo.space().size()))};
    const Route r = router.route(origin, target);
    ++q.samples;
    if (r.reached_storer) ++q.reached;
    if (r.truncated) ++q.truncated;
    q.hop_stats.add(static_cast<double>(r.hops()));
    if (q.hop_histogram.size() <= r.hops()) {
      q.hop_histogram.resize(r.hops() + 1, 0);
    }
    ++q.hop_histogram[r.hops()];
  }
  return q;
}

std::vector<double> bucket_fill(const Topology& topo) {
  const int buckets = topo.space().bits();
  std::vector<double> fill(static_cast<std::size_t>(buckets), 0.0);
  if (topo.node_count() == 0) return fill;
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    const auto& table = topo.table(n);
    for (int b = 0; b < buckets; ++b) {
      const auto cap = static_cast<double>(table.policy().capacity(b));
      fill[static_cast<std::size_t>(b)] +=
          cap > 0 ? static_cast<double>(table.bucket_size(b)) / cap : 0.0;
    }
  }
  for (auto& f : fill) f /= static_cast<double>(topo.node_count());
  return fill;
}

double reachability(const Topology& topo) {
  const std::size_t n = topo.node_count();
  if (n < 2) return 1.0;
  std::size_t reachable_pairs = 0;
  std::vector<char> seen(n);
  for (NodeIndex start = 0; start < n; ++start) {
    std::fill(seen.begin(), seen.end(), 0);
    seen[start] = 1;
    std::queue<NodeIndex> frontier;
    frontier.push(start);
    std::size_t found = 0;
    while (!frontier.empty()) {
      const NodeIndex cur = frontier.front();
      frontier.pop();
      for (const Address peer : topo.table(cur).all_peers()) {
        const NodeIndex p = *topo.index_of(peer);
        if (!seen[p]) {
          seen[p] = 1;
          ++found;
          frontier.push(p);
        }
      }
    }
    reachable_pairs += found;
  }
  return static_cast<double>(reachable_pairs) /
         static_cast<double>(n * (n - 1));
}

std::vector<std::uint64_t> out_degrees(const Topology& topo) {
  std::vector<std::uint64_t> deg(topo.node_count());
  for (NodeIndex n = 0; n < topo.node_count(); ++n) {
    deg[n] = topo.table(n).size();
  }
  return deg;
}

}  // namespace fairswap::overlay
