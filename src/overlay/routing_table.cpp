#include "overlay/routing_table.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace fairswap::overlay {

RoutingTable::RoutingTable(AddressSpace space, Address self,
                           BucketPolicy policy)
    : space_(space),
      self_(self),
      policy_(policy),
      buckets_(static_cast<std::size_t>(space.bits())) {
  assert(space_.contains(self));
}

bool RoutingTable::try_add(Address peer) {
  if (peer == self_ || !space_.contains(peer)) return false;
  const auto b = static_cast<std::size_t>(space_.bucket_index(self_, peer));
  auto& bucket = buckets_[b];
  if (bucket.size() >= policy_.capacity(static_cast<int>(b))) return false;
  if (std::find(bucket.begin(), bucket.end(), peer) != bucket.end()) {
    return false;
  }
  bucket.push_back(peer);
  return true;
}

bool RoutingTable::contains(Address peer) const noexcept {
  if (peer == self_ || !space_.contains(peer)) return false;
  const auto b = static_cast<std::size_t>(space_.bucket_index(self_, peer));
  const auto& bucket = buckets_[b];
  return std::find(bucket.begin(), bucket.end(), peer) != bucket.end();
}

std::span<const Address> RoutingTable::bucket(int b) const noexcept {
  if (b < 0 || b >= bucket_count()) return {};
  return buckets_[static_cast<std::size_t>(b)];
}

std::size_t RoutingTable::bucket_size(int b) const noexcept {
  if (b < 0 || b >= bucket_count()) return 0;
  return buckets_[static_cast<std::size_t>(b)].size();
}

std::size_t RoutingTable::size() const noexcept {
  std::size_t total = 0;
  for (const auto& b : buckets_) total += b.size();
  return total;
}

std::optional<Address> RoutingTable::closest_peer(
    Address target) const noexcept {
  std::optional<Address> best;
  AddressValue best_dist = 0;
  for (const auto& bucket : buckets_) {
    for (Address peer : bucket) {
      const AddressValue d = xor_distance(peer, target);
      if (!best || d < best_dist || (d == best_dist && peer.v < best->v)) {
        best = peer;
        best_dist = d;
      }
    }
  }
  return best;
}

std::optional<Address> RoutingTable::next_hop(Address target) const noexcept {
  if (target == self_) return std::nullopt;
  const int first_diff = space_.bucket_index(self_, target);

  // Closest peer within one bucket (ties toward the smaller address).
  auto best_in =
      [&](const std::vector<Address>& bucket) -> std::optional<Address> {
    std::optional<Address> best;
    AddressValue best_dist = 0;
    for (Address peer : bucket) {
      const AddressValue d = xor_distance(peer, target);
      if (!best || d < best_dist || (d == best_dist && peer.v < best->v)) {
        best = peer;
        best_dist = d;
      }
    }
    return best;
  };

  // Peers in the first-differing bucket match the target at that bit and
  // are strictly closer than self and than peers of every other bucket.
  if (const auto hit =
          best_in(buckets_[static_cast<std::size_t>(first_diff)])) {
    return hit;
  }

  // Otherwise only deeper buckets (longer shared prefix with self) can
  // still be strictly closer; shallower buckets are strictly farther.
  std::optional<Address> best;
  AddressValue best_dist = xor_distance(self_, target);
  for (int b = first_diff + 1; b < bucket_count(); ++b) {
    for (Address peer : buckets_[static_cast<std::size_t>(b)]) {
      const AddressValue d = xor_distance(peer, target);
      if (d < best_dist || (best && d == best_dist && peer.v < best->v)) {
        best = peer;
        best_dist = d;
      }
    }
  }
  return best;
}

std::optional<Address> RoutingTable::next_hop_naive(
    Address target) const noexcept {
  const auto best = closest_peer(target);
  if (!best) return std::nullopt;
  if (xor_distance(*best, target) >= xor_distance(self_, target)) {
    return std::nullopt;
  }
  return best;
}

std::vector<Address> RoutingTable::closest_peers(Address target,
                                                 std::size_t count) const {
  std::vector<Address> peers = all_peers();
  std::sort(peers.begin(), peers.end(), [&](Address a, Address b) {
    const AddressValue da = xor_distance(a, target);
    const AddressValue db = xor_distance(b, target);
    return da != db ? da < db : a.v < b.v;
  });
  if (peers.size() > count) peers.resize(count);
  return peers;
}

int RoutingTable::neighborhood_depth(std::size_t min_peers) const noexcept {
  // Walk from the deepest bucket upward; the neighborhood starts at the
  // shallowest depth d where the union of buckets >= d still has fewer
  // than min_peers peers... Swarm's definition: the deepest proximity
  // order at which the node can still connect to at least `min_peers`
  // peers at-or-deeper. Compute cumulative sizes from deep to shallow.
  std::size_t cumulative = 0;
  for (int b = bucket_count() - 1; b >= 0; --b) {
    cumulative += buckets_[static_cast<std::size_t>(b)].size();
    if (cumulative >= min_peers) return b;
  }
  return 0;
}

std::vector<Address> RoutingTable::all_peers() const {
  std::vector<Address> out;
  out.reserve(size());
  for (const auto& b : buckets_) out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::string RoutingTable::render() const {
  std::ostringstream out;
  out << "node " << AddressSpace::to_decimal(self_) << " ("
      << space_.to_binary(self_) << ")\n";
  for (int b = 0; b < bucket_count(); ++b) {
    const auto peers = bucket(b);
    if (peers.empty()) continue;
    out << "  bucket " << b << ":";
    for (Address p : peers) out << " " << space_.to_binary(p);
    out << "\n";
  }
  return out.str();
}

}  // namespace fairswap::overlay
