#include "overlay/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "common/log.hpp"
#include "overlay/compiled_router.hpp"

namespace fairswap::overlay {

ClosestNodeIndex::ClosestNodeIndex(const AddressSpace& space,
                                   std::span<const Address> nodes)
    : space_(space) {
  nodes_.emplace_back();  // root
  leaves_.reserve(nodes.size());
  for (Address a : nodes) insert(a);
}

void ClosestNodeIndex::insert(Address a) {
  std::int32_t cur = 0;
  for (int bit = space_.bits() - 1; bit >= 0; --bit) {
    const int b = static_cast<int>((a.v >> bit) & 1u);
    if (nodes_[static_cast<std::size_t>(cur)].child[b] < 0) {
      nodes_[static_cast<std::size_t>(cur)].child[b] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    cur = nodes_[static_cast<std::size_t>(cur)].child[b];
  }
  auto& leaf = nodes_[static_cast<std::size_t>(cur)];
  if (leaf.leaf < 0) {
    leaf.leaf = static_cast<std::int32_t>(leaves_.size());
    leaves_.push_back(a);
    ++leaf_count_;
  }
}

std::size_t ClosestNodeIndex::closest_index(Address target) const noexcept {
  assert(leaf_count_ > 0);
  std::int32_t cur = 0;
  for (int bit = space_.bits() - 1; bit >= 0; --bit) {
    const int want = static_cast<int>((target.v >> bit) & 1u);
    const auto& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.child[want] >= 0) {
      cur = node.child[want];
    } else {
      cur = node.child[1 - want];
    }
  }
  return static_cast<std::size_t>(nodes_[static_cast<std::size_t>(cur)].leaf);
}

Address ClosestNodeIndex::closest(Address target) const noexcept {
  return leaves_[closest_index(target)];
}

Topology::Topology(TopologyConfig config, AddressSpace space)
    : config_(std::move(config)), space_(space) {}

Topology Topology::build(const TopologyConfig& config, Rng& rng) {
  AddressSpace space(config.address_bits);
  if (config.node_count == 0) {
    throw std::invalid_argument("node_count must be > 0");
  }
  if (config.node_count > space.size()) {
    throw std::invalid_argument("node_count exceeds address-space size");
  }

  Topology topo(config, space);

  // 1) Unique uniform addresses (rejection sampling; the paper's 1000
  //    nodes in a 65536-slot space reject ~1.5% of draws).
  // fairswap-lint: allow(unordered-container) -- rejection-sampling dedup;
  // only insert().second is observed, never enumerated.
  std::unordered_set<AddressValue> seen;
  topo.addresses_.reserve(config.node_count);
  while (topo.addresses_.size() < config.node_count) {
    const Address a{static_cast<AddressValue>(rng.next_below(space.size()))};
    if (seen.insert(a.v).second) topo.addresses_.push_back(a);
  }
  for (NodeIndex i = 0; i < topo.addresses_.size(); ++i) {
    topo.index_.emplace(topo.addresses_[i], i);
  }

  // 2) Routing tables: for each node, group all other nodes by bucket and
  //    sample up to the bucket capacity uniformly without replacement
  //    (paper: "half of the network's nodes are candidates for bucket 0,
  //    but only k nodes are chosen").
  topo.tables_.reserve(config.node_count);
  std::vector<std::vector<NodeIndex>> candidates(
      static_cast<std::size_t>(space.bits()));
  for (NodeIndex i = 0; i < topo.addresses_.size(); ++i) {
    const Address self = topo.addresses_[i];
    RoutingTable table(space, self, config.buckets);

    for (auto& c : candidates) c.clear();
    for (NodeIndex j = 0; j < topo.addresses_.size(); ++j) {
      if (j == i) continue;
      const int b = space.bucket_index(self, topo.addresses_[j]);
      candidates[static_cast<std::size_t>(b)].push_back(j);
    }

    for (int b = 0; b < space.bits(); ++b) {
      auto& pool = candidates[static_cast<std::size_t>(b)];
      const std::size_t want = config.buckets.capacity(b);
      const auto picks = rng.sample_without_replacement(pool.size(), want);
      for (std::size_t p : picks) {
        table.try_add(topo.addresses_[pool[p]]);
      }
    }

    if (config.neighborhood_connect) {
      const int depth = table.neighborhood_depth(config.neighborhood_min_peers);
      for (NodeIndex j = 0; j < topo.addresses_.size(); ++j) {
        if (j == i) continue;
        const Address other = topo.addresses_[j];
        if (space.proximity(self, other) >= depth && !table.contains(other)) {
          // Neighborhood peers bypass the bucket capacity: real Swarm keeps
          // full connectivity within the neighborhood.
          // Rebuild with a widened bucket is overkill; instead we rely on
          // try_add and accept capacity-full rejections outside depth.
          table.try_add(other);
        }
      }
    }

    topo.tables_.push_back(std::move(table));
  }

  topo.closest_.emplace(space, std::span<const Address>(topo.addresses_));
  topo.compiled_ = std::make_shared<const CompiledRouter>(topo);

  FAIRSWAP_LOG(kInfo, "overlay")
      << "built topology: " << topo.node_count() << " nodes, "
      << space.bits() << "-bit space, k=" << config.buckets.k
      << (config.buckets.k_bucket0 ? " (bucket0 k=" +
              std::to_string(config.buckets.k_bucket0) + ")" : std::string{})
      << ", edges=" << topo.edge_count()
      << ", compiled routing " << topo.compiled_->memory_bytes() << " bytes";
  return topo;
}

const CompiledRouter& Topology::compiled() const noexcept { return *compiled_; }

bool Topology::inject_table_entry(NodeIndex node, Address peer) {
  if (!tables_[node].try_add(peer)) return false;
  compiled_ = std::make_shared<const CompiledRouter>(*this);
  return true;
}

std::optional<NodeIndex> Topology::index_of(Address a) const noexcept {
  const auto it = index_.find(a);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

NodeIndex Topology::closest_node(Address target) const noexcept {
  // The trie was built over addresses_ in node order, so the leaf ordinal
  // is the NodeIndex — no hash lookup needed.
  return static_cast<NodeIndex>(closest_->closest_index(target));
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t.size();
  return total;
}

}  // namespace fairswap::overlay
