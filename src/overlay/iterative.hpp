// Classic (iterative) Kademlia lookup — the baseline routing scheme the
// paper contrasts with forwarding Kademlia (§III-A).
//
// In the original Kademlia, the *requester* drives the lookup: it keeps a
// shortlist of the closest known peers, queries up to α of them in
// parallel, merges the peers they return, and repeats until no closer peer
// appears. Every queried node therefore learns the requester's identity —
// the privacy leak forwarding Kademlia avoids. We simulate the lookup over
// static routing tables and report which nodes learned the requester.
#pragma once

#include <cstddef>
#include <vector>

#include "common/address.hpp"
#include "overlay/topology.hpp"

namespace fairswap::overlay {

/// Result of one iterative lookup.
struct LookupResult {
  /// Closest node found (by XOR) among all peers discovered.
  NodeIndex closest{0};
  /// True if `closest` is the globally closest node to the target.
  bool found_storer{false};
  /// Nodes the requester contacted directly — all of them learn the
  /// requester's identity.
  std::vector<NodeIndex> contacted;
  /// Number of query rounds until convergence.
  std::size_t rounds{0};
  /// Total RPCs issued (== contacted.size(); kept separate for clarity).
  std::size_t messages{0};
};

/// Iterative lookup parameters: α is the per-round parallelism (Kademlia
/// default 3), k the shortlist width (Kademlia default 20).
struct IterativeConfig {
  std::size_t alpha{3};
  std::size_t shortlist{20};
  std::size_t max_rounds{64};
};

/// Simulates iterative lookups over a static topology. Queried nodes
/// answer from their routing tables (closest_peers).
class IterativeLookup {
 public:
  explicit IterativeLookup(const Topology& topo,
                           IterativeConfig config = {}) noexcept;

  [[nodiscard]] LookupResult lookup(NodeIndex requester, Address target) const;

  [[nodiscard]] const IterativeConfig& config() const noexcept {
    return config_;
  }

 private:
  const Topology* topo_;
  IterativeConfig config_;
};

}  // namespace fairswap::overlay
