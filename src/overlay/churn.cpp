#include "overlay/churn.hpp"

#include <algorithm>
#include <cassert>

namespace fairswap::overlay {

DynamicOverlay::DynamicOverlay(Topology topo)
    : topo_(std::move(topo)), alive_(topo_.node_count(), 1),
      alive_count_(topo_.node_count()) {
  tables_.reserve(topo_.node_count());
  for (NodeIndex n = 0; n < topo_.node_count(); ++n) {
    tables_.push_back(topo_.table(n));
  }
}

void DynamicOverlay::fail(NodeIndex n) {
  if (!alive_[n]) return;
  alive_[n] = 0;
  --alive_count_;
  ++stats_.failures;
  invalidate_index();
}

void DynamicOverlay::revive(NodeIndex n) {
  if (alive_[n]) return;
  alive_[n] = 1;
  ++alive_count_;
  ++stats_.revivals;
  invalidate_index();
}

void DynamicOverlay::fail_random(std::size_t count, Rng& rng) {
  std::vector<NodeIndex> candidates;
  for (NodeIndex n = 0; n < node_count(); ++n) {
    if (alive_[n]) candidates.push_back(n);
  }
  if (candidates.empty()) return;
  const std::size_t take = std::min(count, candidates.size() - 1);
  for (const std::size_t idx :
       rng.sample_without_replacement(candidates.size(), take)) {
    fail(candidates[idx]);
  }
}

void DynamicOverlay::rebuild_index() const {
  std::vector<Address> alive_addresses;
  alive_addresses.reserve(alive_count_);
  for (NodeIndex n = 0; n < node_count(); ++n) {
    if (alive_[n]) alive_addresses.push_back(topo_.address_of(n));
  }
  alive_index_.emplace(topo_.space(),
                       std::span<const Address>(alive_addresses));
  index_dirty_ = false;
}

NodeIndex DynamicOverlay::closest_alive(Address target) const {
  assert(alive_count_ > 0);
  if (index_dirty_) rebuild_index();
  return *topo_.index_of(alive_index_->closest(target));
}

Route DynamicOverlay::route(NodeIndex origin, Address target) const {
  Route r;
  r.target = target;
  r.path.push_back(origin);
  if (!alive_[origin]) return r;  // dead originators issue nothing

  const NodeIndex storer = closest_alive(target);
  const std::size_t max_hops =
      static_cast<std::size_t>(topo_.space().bits()) * 4;
  NodeIndex cur = origin;
  while (cur != storer) {
    if (r.hops() >= max_hops) {
      r.truncated = true;
      break;
    }
    // Closest alive, strictly closer table peer. The pruned next_hop
    // cannot be used directly (it might return a dead peer), so scan the
    // table and skip the dead — counting each encounter.
    const auto& table = tables_[cur];
    std::optional<NodeIndex> best;
    AddressValue best_dist = xor_distance(topo_.address_of(cur), target);
    for (const Address peer : table.all_peers()) {
      const auto idx = topo_.index_of(peer);
      const AddressValue d = xor_distance(peer, target);
      if (d >= best_dist) continue;
      // Entries outside the network behave like dead peers: routing skips
      // them instead of dereferencing a missing index.
      if (!idx || !alive_[*idx]) {
        ++stats_.dead_peer_encounters;
        continue;
      }
      best = *idx;
      best_dist = d;
    }
    if (!best) break;
    cur = *best;
    r.path.push_back(cur);
  }
  r.reached_storer = (cur == storer);
  return r;
}

std::size_t DynamicOverlay::repair(NodeIndex n, Rng& rng) {
  if (!alive_[n]) return 0;
  const Address self = topo_.address_of(n);
  const auto& space = topo_.space();
  const auto& policy = tables_[n].policy();

  // Group alive candidates by bucket.
  std::vector<std::vector<Address>> candidates(
      static_cast<std::size_t>(space.bits()));
  for (NodeIndex j = 0; j < node_count(); ++j) {
    if (j == n || !alive_[j]) continue;
    const Address a = topo_.address_of(j);
    candidates[static_cast<std::size_t>(space.bucket_index(self, a))]
        .push_back(a);
  }

  // Rebuild the table: keep alive entries, then fill gaps randomly.
  RoutingTable fresh(space, self, policy);
  std::size_t repaired = 0;
  for (int b = 0; b < space.bits(); ++b) {
    for (const Address peer : tables_[n].bucket(b)) {
      const auto idx = topo_.index_of(peer);
      if (idx && alive_[*idx]) fresh.try_add(peer);
    }
  }
  for (int b = 0; b < space.bits(); ++b) {
    auto& pool = candidates[static_cast<std::size_t>(b)];
    if (fresh.bucket_size(b) >= policy.capacity(b) || pool.empty()) continue;
    rng.shuffle(std::span<Address>(pool));
    for (const Address peer : pool) {
      if (fresh.bucket_size(b) >= policy.capacity(b)) break;
      if (fresh.try_add(peer)) ++repaired;
    }
  }
  tables_[n] = std::move(fresh);
  stats_.repairs += repaired;
  return repaired;
}

std::size_t DynamicOverlay::repair_all(Rng& rng) {
  std::size_t total = 0;
  for (NodeIndex n = 0; n < node_count(); ++n) {
    total += repair(n, rng);
  }
  return total;
}

double DynamicOverlay::staleness(NodeIndex n) const {
  const auto peers = tables_[n].all_peers();
  if (peers.empty()) return 0.0;
  std::size_t dead = 0;
  for (const Address peer : peers) {
    const auto idx = topo_.index_of(peer);
    if (!idx || !alive_[*idx]) ++dead;
  }
  return static_cast<double>(dead) / static_cast<double>(peers.size());
}

}  // namespace fairswap::overlay
