// Compiled routing — the precomputed hot path for forwarding Kademlia.
//
// Routing tables remain static for the entirety of an experiment (paper
// §III-A), so the greedy next-hop selection can be compiled once, right
// after Topology::build, into dense flat arrays and answered in a handful
// of loads per hop:
//
//  * a per-node, per-bucket CSR slab of the table peers over NodeIndex —
//    one contiguous arena for the whole network instead of a
//    vector<vector<Address>> per node, and no Address -> index hash
//    lookup per hop;
//  * peers stored pre-packed as (address << shift) | slab_local_index, so
//    one XOR-min reduction (which the compiler vectorizes) returns the
//    argmin peer directly — no branchy three-way bucket dispatch, no
//    second locate pass, no data-dependent branches beyond the scan
//    length itself;
//  * a dense storer table `storer_[address]` answering "which node stores
//    this chunk" with a single load (built for address spaces up to
//    kDenseStorerBits bits; wider spaces fall back to the trie);
//  * a batched walker advancing several routes in lockstep so their
//    independent per-hop loads overlap — one file download routes all of
//    its chunks as one batch.
//
// The compiled answers are bit-identical to RoutingTable::next_hop and
// ForwardingRouter::route, which stay in the tree as the reference
// implementation; tests/overlay/compiled_router_test.cpp and
// tests/core/compiled_equivalence_test.cpp enforce the equivalence.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/address.hpp"
#include "overlay/forwarding.hpp"
#include "overlay/topology.hpp"

namespace fairswap::overlay {

/// Sentinel returned by CompiledRouter::next_hop when the walk cannot
/// continue: no strictly closer peer is known (dead end), or the greedy
/// winner is a table entry that does not belong to the network (a stale /
/// poisoned entry, which fails the route rather than invoking UB).
inline constexpr NodeIndex kNoNextHop = 0xFFFFFFFFu;

/// Immutable compiled form of every routing table in a Topology. Built by
/// Topology::build (and rebuilt on fault injection); shared by reference
/// through Topology::compiled(). Self-contained: it copies the addresses
/// and table structure it needs, so it stays valid when the owning
/// Topology is moved.
class CompiledRouter {
 public:
  /// Address spaces at most this wide get the dense per-address storer
  /// table (2^bits entries); wider spaces answer storer_of via the trie.
  static constexpr int kDenseStorerBits = 22;

  explicit CompiledRouter(const Topology& topo);

  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// One greedy step: the winning peer plus the arena id of the traversed
  /// directed edge (the index of the winner in the CSR peer slabs). The
  /// edge id is what the edge ledger keys its balance slots by, so every
  /// route resolves its accounting slots here, for free, instead of
  /// hashing node pairs per hop. next == kNoNextHop implies edge ==
  /// kNoEdge.
  struct Hop {
    NodeIndex next{kNoNextHop};
    EdgeId edge{kNoEdge};
  };

  /// The peer `from` forwards a request for `target` to, or kNoNextHop.
  /// Bit-identical to RoutingTable::next_hop resolved through
  /// Topology::index_of. Defined inline below: this is the per-hop inner
  /// loop of every simulation and must inline into the walk.
  [[nodiscard]] NodeIndex next_hop(NodeIndex from,
                                   Address target) const noexcept {
    return next_hop_edge(from, target).next;
  }

  /// next_hop plus the arena edge id of the step taken. The edge id is a
  /// byproduct of the argmin the scan computes anyway, so this costs
  /// nothing over next_hop.
  [[nodiscard]] Hop next_hop_edge(NodeIndex from,
                                  Address target) const noexcept;

  /// The node storing content at `target` (globally XOR-closest node).
  [[nodiscard]] NodeIndex storer_of(Address target) const noexcept {
    if (!storer_.empty()) return storer_[target.v];
    return static_cast<NodeIndex>(closest_.closest_index(target));
  }

  /// Greedy forwarding walk, bit-identical to ForwardingRouter::route.
  /// `max_hops` == 0 means the default 4x address bits.
  [[nodiscard]] Route route(NodeIndex origin, Address target,
                            std::size_t max_hops = 0) const;

  /// Allocation-free variant: writes into `out` (resetting it first), so
  /// the simulation can route millions of chunks through one path buffer.
  void route_into(NodeIndex origin, Address target, Route& out,
                  std::size_t max_hops = 0) const;

  /// Routes `origins[i] -> targets[i]` for every i, walking several routes
  /// in lockstep so their (independent) per-hop loads overlap — the greedy
  /// walk is a pointer chase, and memory-level parallelism across routes
  /// is where the remaining latency hides. out[i] is bit-identical to
  /// route(origins[i], targets[i]); `out` is resized and its per-route
  /// path buffers are reused. Requires origins.size() == targets.size().
  /// This is the simulator's per-file hot path: one file download routes
  /// its 100..1000 chunks as one batch.
  void route_batch(std::span<const NodeIndex> origins,
                   std::span<const Address> targets, std::vector<Route>& out,
                   std::size_t max_hops = 0) const;

  /// True when the packed single-pass scan applies (every node's peer
  /// slab index fits next to the address in 32 bits). Wider layouts use
  /// the two-pass reference scan. Exposed for tests.
  [[nodiscard]] bool packed() const noexcept { return shift_ > 0; }

  /// Total bytes held by the compiled arrays (CSR slabs, packed peers,
  /// storer table, closest-node trie) — the memory cost of the precompute.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  // --- Edge arena introspection (consumed by accounting::EdgeLedger) ---

  /// peer_idx_ sentinel: table address not assigned to any node. An edge
  /// whose target is foreign is never traversed (next_hop fails the route
  /// instead) and never gets a ledger slot.
  static constexpr NodeIndex kForeignPeer = 0xFFFFFFFFu;

  /// Number of directed edges in the CSR peer arena (== the sum of all
  /// routing-table sizes). Valid edge ids are [0, edge_count).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return peer_idx_.size();
  }

  /// Target node of a directed arena edge (kForeignPeer for stale /
  /// poisoned table entries).
  [[nodiscard]] NodeIndex edge_target(EdgeId e) const noexcept {
    return peer_idx_[e];
  }

  /// Half-open range of arena edge ids whose source is `node` (its slab).
  [[nodiscard]] std::pair<EdgeId, EdgeId> node_edge_range(
      NodeIndex node) const noexcept {
    const std::size_t row =
        static_cast<std::size_t>(node) * static_cast<std::size_t>(bits_);
    return {offsets_[row], offsets_[row + static_cast<std::size_t>(bits_)]};
  }

 private:
  [[nodiscard]] Hop next_hop_generic(std::uint32_t scan_begin,
                                     std::uint32_t scan_end,
                                     std::uint64_t threshold,
                                     Address target) const noexcept;

  AddressSpace space_;
  int bits_;
  std::size_t node_count_;
  /// Packed-scan shift: peers are stored as (address << shift_) | local
  /// slab index. 0 disables the packed path (wide space or huge slab).
  int shift_{0};
  std::uint32_t local_mask_{0};
  std::vector<AddressValue> node_addr_;   ///< node -> address value
  std::vector<std::uint32_t> offsets_;    ///< CSR, node_count * bits + 1
  std::vector<std::uint32_t> peer_packed_;///< (addr << shift_) | local idx
  std::vector<AddressValue> peer_addr_;   ///< plain addresses (generic path)
  std::vector<NodeIndex> peer_idx_;       ///< parallel NodeIndex (resolution)
  std::vector<NodeIndex> storer_;         ///< 2^bits, or empty (wide space)
  ClosestNodeIndex closest_;              ///< storer fallback for wide spaces
};

inline CompiledRouter::Hop CompiledRouter::next_hop_edge(
    NodeIndex from, Address target) const noexcept {
  const AddressValue self = node_addr_[from];
  const AddressValue x = self ^ target.v;
  if (x == 0) return {};  // target is this node's own address
  // First differing bit == bucket index (see AddressSpace::bucket_index).
  const int bucket = bits_ - std::bit_width(x);
  const std::size_t cell = static_cast<std::size_t>(from) *
                               static_cast<std::size_t>(bits_) +
                           static_cast<std::size_t>(bucket);
  const std::uint32_t slab_begin =
      offsets_[cell - static_cast<std::size_t>(bucket)];
  const std::uint32_t slab_end =
      offsets_[cell - static_cast<std::size_t>(bucket) +
               static_cast<std::size_t>(bits_)];
  const std::uint32_t b0 = offsets_[cell];
  const std::uint32_t b1 = offsets_[cell + 1];

  // Any peer of the (nonempty) first-differing bucket is strictly closer
  // than self — scan [b0, b1) unconditionally. If the bucket is empty,
  // only deeper buckets (longer shared prefix with self) can be strictly
  // closer; they are the contiguous CSR tail [b1, slab_end), guarded by
  // the strictly-closer-than-self threshold. Selecting the range and the
  // threshold branchlessly keeps the hop free of data-dependent branches.
  const bool empty = (b0 == b1);
  const std::uint32_t scan_begin = empty ? b1 : b0;
  const std::uint32_t scan_end = empty ? slab_end : b1;

  if (shift_ != 0) {
    // Packed path: one XOR-min reduction yields (distance, local index);
    // distinct addresses never tie under XOR, so the argmin is exact. The
    // all-ones threshold is unreachable for a real bucket peer (the
    // packed path requires bits <= 31), so nonempty buckets accept their
    // argmin unconditionally, exactly like the reference.
    const AddressValue threshold = empty ? x : 0xFFFFFFFFu;
    const std::uint32_t tshift = target.v << shift_;
    const std::uint32_t* const pp = peer_packed_.data();
    std::uint32_t best = 0xFFFFFFFFu;
    for (std::uint32_t i = scan_begin; i < scan_end; ++i) {
      best = std::min(best, pp[i] ^ tshift);
    }
    if ((best >> shift_) >= threshold) return {};
    const EdgeId edge = slab_begin + (best & local_mask_);
    const NodeIndex idx = peer_idx_[edge];
    return idx == kForeignPeer ? Hop{} : Hop{idx, edge};
  }
  return next_hop_generic(scan_begin, scan_end,
                          empty ? std::uint64_t{x} : UINT64_MAX, target);
}

}  // namespace fairswap::overlay
