// Network topology: node address assignment plus one static routing table
// per node, built deterministically from a seed.
//
// The paper builds a 1000-node network on a 16-bit address space, populates
// every bucket with up to k uniformly chosen candidates, and keeps the
// tables static for the entire experiment. The same topology object can be
// shared by many simulations ("Our tool allows to use the same overlay for
// multiple simulations").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/address.hpp"
#include "common/rng.hpp"
#include "overlay/routing_table.hpp"

namespace fairswap::overlay {

class CompiledRouter;

/// Dense node index in [0, node_count). All per-node experiment counters
/// are vectors indexed by NodeIndex.
using NodeIndex = std::uint32_t;

/// Answers "which node is XOR-closest to this address?" in O(bits) via a
/// binary trie over the node addresses. Because addresses are unique, the
/// closest node is unique (d(a,t) == d(b,t) implies a == b), which is what
/// makes the paper's "only the closest node stores a chunk" well defined.
class ClosestNodeIndex {
 public:
  ClosestNodeIndex(const AddressSpace& space, std::span<const Address> nodes);

  /// The node address closest to `target` (target may equal a node).
  [[nodiscard]] Address closest(Address target) const noexcept;

  /// The insertion ordinal of the closest address — equal to the NodeIndex
  /// when the index was built over Topology::addresses() in node order.
  [[nodiscard]] std::size_t closest_index(Address target) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return leaf_count_; }

  /// Bytes held by the trie arrays.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return nodes_.size() * sizeof(TrieNode) + leaves_.size() * sizeof(Address);
  }

 private:
  struct TrieNode {
    std::int32_t child[2]{-1, -1};
    std::int32_t leaf{-1};
  };

  void insert(Address a);

  AddressSpace space_;
  std::vector<TrieNode> nodes_;
  std::vector<Address> leaves_;
  std::size_t leaf_count_{0};
};

/// Topology construction parameters (paper defaults).
struct TopologyConfig {
  std::size_t node_count{1000};
  int address_bits{16};
  BucketPolicy buckets{};
  /// If true, additionally connect each node to *all* nodes within its
  /// neighborhood depth, as real Swarm does. The paper's simulation does
  /// not; default off.
  bool neighborhood_connect{false};
  /// Minimum peers defining the neighborhood depth (Swarm uses 4).
  std::size_t neighborhood_min_peers{4};

  /// Equal configs build equal topologies from equal seeds — what lets the
  /// experiment harness share one built topology across a sweep group.
  friend bool operator==(const TopologyConfig&,
                         const TopologyConfig&) = default;
};

/// An immutable overlay: addresses, routing tables, and the closest-node
/// index. Value type; cheap to share by const reference.
class Topology {
 public:
  /// Builds a topology. All randomness (addresses, bucket sampling) is
  /// drawn from `rng`, so equal seeds give identical networks.
  static Topology build(const TopologyConfig& config, Rng& rng);

  [[nodiscard]] const TopologyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AddressSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return addresses_.size();
  }

  [[nodiscard]] Address address_of(NodeIndex n) const noexcept {
    return addresses_[n];
  }
  [[nodiscard]] std::optional<NodeIndex> index_of(Address a) const noexcept;
  [[nodiscard]] const RoutingTable& table(NodeIndex n) const noexcept {
    return tables_[n];
  }
  [[nodiscard]] std::span<const Address> addresses() const noexcept {
    return addresses_;
  }

  /// The node that stores content at `target` (globally XOR-closest node).
  [[nodiscard]] NodeIndex closest_node(Address target) const noexcept;

  /// The compiled (precomputed) routing hot path over these tables. Built
  /// once at the end of build(); rebuilt by inject_table_entry. See
  /// overlay/compiled_router.hpp.
  [[nodiscard]] const CompiledRouter& compiled() const noexcept;

  /// Shared ownership of the current compiled router, for holders that
  /// must keep one arena snapshot alive and self-consistent (edge ids
  /// index into a specific arena) across a potential inject_table_entry
  /// recompile — core::Simulation pins its snapshot through this.
  [[nodiscard]] std::shared_ptr<const CompiledRouter> compiled_shared()
      const noexcept {
    return compiled_;
  }

  /// Fault-injection seam: admits `peer` into `node`'s routing table even
  /// when `peer` is not a member of this network — modelling a stale or
  /// poisoned table entry pointing at a departed node. Respects bucket
  /// capacity (returns false when the bucket is full or the entry is
  /// already present) and recompiles the routing hot path on success.
  /// Used by the route-accounting regression tests. Inject before
  /// constructing simulations: a Simulation pins the compiled router it
  /// was built with (routing and edge-ledger slots must index one arena),
  /// so later injections are invisible to it.
  bool inject_table_entry(NodeIndex node, Address peer);

  /// Total directed "knows" edges (sum of routing-table sizes).
  [[nodiscard]] std::size_t edge_count() const noexcept;

 private:
  Topology(TopologyConfig config, AddressSpace space);

  TopologyConfig config_;
  AddressSpace space_;
  std::vector<Address> addresses_;
  std::vector<RoutingTable> tables_;
  // fairswap-lint: allow(unordered-container) -- address->index lookup for
  // index_of() only, never enumerated (node order lives in addresses_).
  std::unordered_map<Address, NodeIndex> index_;
  std::optional<ClosestNodeIndex> closest_;
  /// Shared, immutable after build; copies of a Topology share it.
  std::shared_ptr<const CompiledRouter> compiled_;
};

}  // namespace fairswap::overlay
