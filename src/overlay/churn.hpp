// Churn: node departures, arrivals, and table repair.
//
// The paper's experiments keep tables static, but its introduction names
// "coping with the network churn" as one of the standing challenges of
// p2p storage, and §V's misbehaviour thread asks how fairness behaves
// when the network deviates from the ideal. DynamicOverlay wraps a
// Topology with liveness state: dead peers linger in routing tables until
// their entry is used (lazy discovery, as in real networks), repair
// refills buckets from live candidates, and the closest-alive index keeps
// chunk responsibility well defined as membership changes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "overlay/forwarding.hpp"
#include "overlay/topology.hpp"

namespace fairswap::overlay {

/// Churn statistics.
struct ChurnStats {
  std::uint64_t failures{0};
  std::uint64_t revivals{0};
  std::uint64_t dead_peer_encounters{0};  ///< routing stepped over a dead peer
  std::uint64_t repairs{0};               ///< table slots refilled
};

/// A topology plus liveness. Routing skips dead peers (at the cost of
/// potentially longer or failing routes); the storer of a chunk is the
/// closest *alive* node.
class DynamicOverlay {
 public:
  explicit DynamicOverlay(Topology topo);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return topo_.node_count();
  }
  [[nodiscard]] bool alive(NodeIndex n) const noexcept {
    return alive_[n] != 0;
  }
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_count_;
  }
  [[nodiscard]] const ChurnStats& stats() const noexcept { return stats_; }

  /// Marks a node failed. Its table entries elsewhere remain until
  /// repaired (lazy discovery). No-op if already dead.
  void fail(NodeIndex n);

  /// Brings a failed node back with its original address and table.
  void revive(NodeIndex n);

  /// Fails `count` random alive nodes (never all of them).
  void fail_random(std::size_t count, Rng& rng);

  /// The alive node closest to `target` (XOR). Rebuilt lazily after
  /// membership changes.
  [[nodiscard]] NodeIndex closest_alive(Address target) const;

  /// Greedy forwarding that skips dead peers: each hop picks the closest
  /// *alive, strictly closer* table peer. Returns the route; fails when a
  /// node has no alive closer peer or the hop limit is hit.
  [[nodiscard]] Route route(NodeIndex origin, Address target) const;

  /// Refills node n's buckets with alive candidates replacing dead
  /// entries (models Swarm's hive/table-maintenance protocol). Returns
  /// slots repaired.
  std::size_t repair(NodeIndex n, Rng& rng);

  /// Repairs every alive node's table.
  std::size_t repair_all(Rng& rng);

  /// Fraction of table entries of `n` that point at dead peers.
  [[nodiscard]] double staleness(NodeIndex n) const;

 private:
  void invalidate_index() noexcept { index_dirty_ = true; }
  void rebuild_index() const;

  Topology topo_;
  std::vector<RoutingTable> tables_;  ///< mutable copies (repair rewrites)
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_;
  mutable ChurnStats stats_;
  mutable std::optional<ClosestNodeIndex> alive_index_;
  mutable bool index_dirty_{true};
};

}  // namespace fairswap::overlay
