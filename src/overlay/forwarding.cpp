#include "overlay/forwarding.hpp"

namespace fairswap::overlay {

ForwardingRouter::ForwardingRouter(const Topology& topo,
                                   std::size_t max_hops) noexcept
    : topo_(&topo),
      max_hops_(max_hops == 0
                    ? static_cast<std::size_t>(topo.space().bits()) * 4
                    : max_hops) {}

Route ForwardingRouter::route(NodeIndex origin, Address target) const {
  Route r;
  route_into(origin, target, r);
  return r;
}

void ForwardingRouter::route_into(NodeIndex origin, Address target,
                                  Route& r) const {
  r.reset(target);
  r.path.push_back(origin);

  const NodeIndex storer = topo_->closest_node(target);
  NodeIndex cur = origin;
  while (cur != storer) {
    if (r.hops() >= max_hops_) {
      r.truncated = true;
      break;
    }
    const auto next = topo_->table(cur).next_hop(target);
    if (!next) break;  // local minimum: no strictly closer peer known
    const auto idx = topo_->index_of(*next);
    if (!idx) break;  // table entry outside the network: fail the route
    cur = *idx;
    r.path.push_back(cur);
  }
  r.reached_storer = (cur == storer);
}

}  // namespace fairswap::overlay
