#include "overlay/forwarding.hpp"

namespace fairswap::overlay {

ForwardingRouter::ForwardingRouter(const Topology& topo, std::size_t max_hops) noexcept
    : topo_(&topo),
      max_hops_(max_hops == 0
                    ? static_cast<std::size_t>(topo.space().bits()) * 4
                    : max_hops) {}

Route ForwardingRouter::route(NodeIndex origin, Address target) const {
  Route r;
  r.target = target;
  r.path.push_back(origin);

  const NodeIndex storer = topo_->closest_node(target);
  NodeIndex cur = origin;
  while (cur != storer) {
    if (r.hops() >= max_hops_) {
      r.truncated = true;
      break;
    }
    const auto next = topo_->table(cur).next_hop(target);
    if (!next) break;  // local minimum: no strictly closer peer known
    cur = *topo_->index_of(*next);
    r.path.push_back(cur);
  }
  r.reached_storer = (cur == storer);
  return r;
}

}  // namespace fairswap::overlay
