// The incentive-ablated baseline: chunks are routed and served, but no
// money moves and no debt is recorded — bandwidth is a pure cost to
// whoever provides it. This is the control arm of the strategic-agents
// experiments (src/agents): with payments ablated, sharing earns nothing,
// so free-riding is the dominant strategy and invades an all-sharer
// population to fixation — exactly the collapse SWAP's incentives are
// there to prevent (see the `invasion` scenario).
#pragma once

#include "incentives/policy.hpp"

namespace fairswap::incentives {

class NoPaymentPolicy final : public PaymentPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }

  /// No payments, no debt: every income stays zero.
  void on_delivery(PolicyContext& ctx, const Route& route) override;
};

}  // namespace fairswap::incentives
