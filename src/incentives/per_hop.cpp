#include "incentives/per_hop.hpp"

namespace fairswap::incentives {

bool PerHopSwapPolicy::admit(PolicyContext& ctx, const Route& route) {
  if (!PaymentPolicy::admit(ctx, route)) return false;
  // A pair refuses service when the consumer's debt is already at the
  // disconnect threshold and the consumer cannot settle (free rider).
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const NodeIndex consumer = route.path[i];
    const NodeIndex provider = route.path[i + 1];
    if (!ctx.is_free_rider(consumer)) continue;  // solvent peers always settle
    const Token debt = ctx.swap->balance(provider, consumer, route.edge(i));
    const Token price = ctx.price(provider, route.target);
    if (debt + price > ctx.swap->config().disconnect_threshold) return false;
  }
  return true;
}

void PerHopSwapPolicy::on_delivery(PolicyContext& ctx, const Route& route) {
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const NodeIndex consumer = route.path[i];
    const NodeIndex provider = route.path[i + 1];
    const Token price = ctx.price(provider, route.target);
    // Solvent peers run the normal SWAP machinery (accrue, settle at the
    // payment threshold); free riders never settle, their debt just
    // accrues until admit() starts refusing them.
    (void)ctx.swap->debit(consumer, provider, price,
                          /*can_settle=*/!ctx.is_free_rider(consumer),
                          route.edge(i));
  }
}

}  // namespace fairswap::incentives
