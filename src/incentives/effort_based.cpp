#include "incentives/effort_based.hpp"

#include <numeric>

namespace fairswap::incentives {

EffortBasedPolicy::EffortBasedPolicy(std::vector<double> offered_capacity,
                                     Token pool_per_step)
    : capacity_(std::move(offered_capacity)), pool_per_step_(pool_per_step) {
  capacity_total_ = std::accumulate(capacity_.begin(), capacity_.end(), 0.0);
}

void EffortBasedPolicy::on_delivery(PolicyContext& ctx, const Route& route) {
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    (void)ctx.swap->debit(route.path[i], route.path[i + 1],
                          ctx.price(route.path[i + 1], route.target),
                          /*can_settle=*/false, route.edge(i));
  }
}

void EffortBasedPolicy::on_step_end(PolicyContext& ctx) {
  const std::size_t n = ctx.topo->node_count();
  if (capacity_.empty()) {
    capacity_.assign(n, 1.0);
    capacity_total_ = static_cast<double>(n);
  }
  if (capacity_total_ <= 0.0) return;
  // The pool is minted (protocol subsidy), not moved between peers, so
  // income is credited without a paying counter-party. We model the payer
  // as the node itself paying 0; SwapNetwork exposes income directly.
  for (NodeIndex i = 0; i < n; ++i) {
    const double share = capacity_[i] / capacity_total_;
    const auto amount = Token(static_cast<Token::rep>(
        static_cast<double>(pool_per_step_.base_units()) * share));
    if (amount.is_zero()) continue;
    // Credit income via a settlement from a virtual treasury: reuse
    // pay_direct with the receiving node as its own payer would distort
    // `spent`; SwapNetwork::mint exists for exactly this.
    ctx.swap->mint(i, amount);
  }
}

}  // namespace fairswap::incentives
