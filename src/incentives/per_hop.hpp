// Full SWAP settlement: every relay pair on the route runs through the
// SWAP threshold machinery — debt accrues hop-by-hop and converts into
// income whenever a pair's balance crosses the payment threshold. This is
// the "complete" SWAP behaviour the zero-proximity default approximates,
// and the natural comparator for the §V discussion of per-hop payment
// spreading.
#pragma once

#include "incentives/policy.hpp"

namespace fairswap::incentives {

class PerHopSwapPolicy final : public PaymentPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "per-hop-swap"; }

  /// Refuses the delivery if any relay pair on the route is beyond its
  /// disconnect threshold (the SWAP blocklist behaviour).
  bool admit(PolicyContext& ctx, const Route& route) override;

  void on_delivery(PolicyContext& ctx, const Route& route) override;
};

}  // namespace fairswap::incentives
