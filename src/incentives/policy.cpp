#include "incentives/policy.hpp"

#include "incentives/effort_based.hpp"
#include "incentives/no_payment.hpp"
#include "incentives/per_hop.hpp"
#include "incentives/tit_for_tat.hpp"
#include "incentives/zero_proximity.hpp"

namespace fairswap::incentives {

bool PaymentPolicy::admit(PolicyContext& /*ctx*/, const Route& /*route*/) {
  return true;
}

void PaymentPolicy::on_step_end(PolicyContext& /*ctx*/) {}

void PaymentPolicy::reset() {}

std::unique_ptr<PaymentPolicy> make_policy(const std::string& name) {
  if (name == "zero-proximity") return std::make_unique<ZeroProximityPolicy>();
  if (name == "per-hop-swap") return std::make_unique<PerHopSwapPolicy>();
  if (name == "tit-for-tat") return std::make_unique<TitForTatPolicy>();
  if (name == "none") return std::make_unique<NoPaymentPolicy>();
  if (name == "effort-based") {
    return std::make_unique<EffortBasedPolicy>(std::vector<double>{},
                                               Token::whole(1));
  }
  return nullptr;
}

}  // namespace fairswap::incentives
