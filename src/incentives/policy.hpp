// Payment policies: who pays whom, and how much, when a chunk is routed.
//
// The paper evaluates Swarm's default behaviour — only the zero-proximity
// node is paid, everything else waits for time-based amortization — and
// §II/§V motivate comparing against other reward schemes. The policy
// interface decouples "a chunk moved along this route" from "money moved",
// so the simulator can swap in the BitTorrent-style and effort-based
// baselines without touching routing or accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accounting/ledger.hpp"
#include "accounting/pricing.hpp"
#include "overlay/forwarding.hpp"
#include "overlay/topology.hpp"

namespace fairswap::incentives {

using accounting::Ledger;
using accounting::Pricer;
using overlay::NodeIndex;
using overlay::Route;
using overlay::Topology;

/// Everything a policy may consult or mutate when reacting to a delivery.
struct PolicyContext {
  const Topology* topo{nullptr};
  /// The SWAP ledger behind either backend (see accounting/ledger.hpp).
  /// Policies pass Route::edge(i) hints so the edge backend resolves its
  /// balance slots without hashing.
  Ledger* swap{nullptr};
  const Pricer* pricer{nullptr};
  /// Per-node flag: free riders consume service but never issue payments
  /// (the §V misbehaviour extension). Empty = no free riders.
  const std::vector<std::uint8_t>* free_rider{nullptr};
  /// Per-node flag: nodes that refuse to serve or relay chunks — the
  /// strategic free-ride behavior of src/agents, injected through
  /// core::Simulation::set_behavior. Empty (the default for classic runs)
  /// = every node serves.
  const std::vector<std::uint8_t>* refuses_service{nullptr};

  [[nodiscard]] bool is_free_rider(NodeIndex n) const noexcept {
    return free_rider && !free_rider->empty() && (*free_rider)[n] != 0;
  }

  [[nodiscard]] bool refuses(NodeIndex n) const noexcept {
    return refuses_service && !refuses_service->empty() &&
           (*refuses_service)[n] != 0;
  }

  /// Where the chunk dies: walking the path in the direction the *data*
  /// flows — from the terminal (path.back(), the storer or cache hit)
  /// toward the originator for a download, from the originator toward
  /// the storer for an upload — the position of the first node that
  /// refuses to serve. Positions are path indices in
  /// [1, path.size()-1]; 0 means nobody refuses (the originator is the
  /// consumer — its behavior never blocks its own transfer). The nodes
  /// the chunk passed *before* the refusal point already handled it;
  /// the simulation counts those serves even though the transfer fails.
  [[nodiscard]] std::size_t first_refusing_server(
      const Route& route, bool is_upload) const noexcept {
    if (!refuses_service || refuses_service->empty()) return 0;
    if (is_upload) {
      for (std::size_t i = 1; i < route.path.size(); ++i) {
        if ((*refuses_service)[route.path[i]] != 0) return i;
      }
      return 0;
    }
    for (std::size_t i = route.path.size(); i-- > 1;) {
      if ((*refuses_service)[route.path[i]] != 0) return i;
    }
    return 0;
  }

  /// Price for `payee` delivering the chunk at `chunk`.
  [[nodiscard]] Token price(NodeIndex payee, Address chunk) const {
    return pricer->price(topo->space(), topo->address_of(payee), chunk);
  }
};

/// Strategy interface invoked by core::Simulation.
class PaymentPolicy {
 public:
  virtual ~PaymentPolicy() = default;

  /// Identifier used in reports ("zero-proximity", "per-hop-swap", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called before the chunk is served. Returning false refuses the
  /// delivery (the chunk does not move and on_delivery is not called) —
  /// how tit-for-tat choking and SWAP disconnection manifest. Strategic
  /// service refusal (ctx.first_refusing_server) is applied by the
  /// simulation before admit, with partial-transmission accounting;
  /// overrides chain to the base implementation so future shared
  /// behavior hooks apply to every policy.
  virtual bool admit(PolicyContext& ctx, const Route& route);

  /// Called after a successful delivery along `route` (route.path.front()
  /// is the originator; the last entry served the chunk).
  virtual void on_delivery(PolicyContext& ctx, const Route& route) = 0;

  /// Called once at the end of every simulation step (one file download).
  virtual void on_step_end(PolicyContext& ctx);

  /// Drops any accumulated per-run state (tit-for-tat service balances,
  /// choke counters, ...) so the policy starts the next epoch fresh —
  /// part of core::Simulation::reset's contract that a post-reset run is
  /// bit-identical to a fresh construction. Stateless policies inherit
  /// the no-op default.
  virtual void reset();
};

/// Factory by name: "zero-proximity", "per-hop-swap", "tit-for-tat",
/// "effort-based", "none" (the incentive-ablated network: chunks move,
/// no accounting at all). Unknown names return nullptr.
[[nodiscard]] std::unique_ptr<PaymentPolicy> make_policy(
    const std::string& name);

}  // namespace fairswap::incentives
