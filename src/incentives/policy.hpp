// Payment policies: who pays whom, and how much, when a chunk is routed.
//
// The paper evaluates Swarm's default behaviour — only the zero-proximity
// node is paid, everything else waits for time-based amortization — and
// §II/§V motivate comparing against other reward schemes. The policy
// interface decouples "a chunk moved along this route" from "money moved",
// so the simulator can swap in the BitTorrent-style and effort-based
// baselines without touching routing or accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accounting/ledger.hpp"
#include "accounting/pricing.hpp"
#include "overlay/forwarding.hpp"
#include "overlay/topology.hpp"

namespace fairswap::incentives {

using accounting::Ledger;
using accounting::Pricer;
using overlay::NodeIndex;
using overlay::Route;
using overlay::Topology;

/// Everything a policy may consult or mutate when reacting to a delivery.
struct PolicyContext {
  const Topology* topo{nullptr};
  /// The SWAP ledger behind either backend (see accounting/ledger.hpp).
  /// Policies pass Route::edge(i) hints so the edge backend resolves its
  /// balance slots without hashing.
  Ledger* swap{nullptr};
  const Pricer* pricer{nullptr};
  /// Per-node flag: free riders consume service but never issue payments
  /// (the §V misbehaviour extension). Empty = no free riders.
  const std::vector<std::uint8_t>* free_rider{nullptr};

  [[nodiscard]] bool is_free_rider(NodeIndex n) const noexcept {
    return free_rider && !free_rider->empty() && (*free_rider)[n] != 0;
  }

  /// Price for `payee` delivering the chunk at `chunk`.
  [[nodiscard]] Token price(NodeIndex payee, Address chunk) const {
    return pricer->price(topo->space(), topo->address_of(payee), chunk);
  }
};

/// Strategy interface invoked by core::Simulation.
class PaymentPolicy {
 public:
  virtual ~PaymentPolicy() = default;

  /// Identifier used in reports ("zero-proximity", "per-hop-swap", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called before the chunk is served. Returning false refuses the
  /// delivery (the chunk does not move and on_delivery is not called) —
  /// how tit-for-tat choking and SWAP disconnection manifest.
  virtual bool admit(PolicyContext& ctx, const Route& route);

  /// Called after a successful delivery along `route` (route.path.front()
  /// is the originator; the last entry served the chunk).
  virtual void on_delivery(PolicyContext& ctx, const Route& route) = 0;

  /// Called once at the end of every simulation step (one file download).
  virtual void on_step_end(PolicyContext& ctx);
};

/// Factory by name: "zero-proximity", "per-hop-swap", "tit-for-tat",
/// "effort-based". Unknown names return nullptr.
[[nodiscard]] std::unique_ptr<PaymentPolicy> make_policy(const std::string& name);

}  // namespace fairswap::incentives
