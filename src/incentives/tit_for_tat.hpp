// BitTorrent-style tit-for-tat — the token-free baseline (paper §I):
//
//   "BitTorrent ... incentivizes bandwidth contributions with a tit-for-tat
//    mechanism. Such mechanisms ensure that peers receive fair rewards with
//    respect to their contribution and prevent free riding. However, since
//    rewards are only given as access to the service, peers are not
//    incentivized to share resources when they are not using the system
//    themselves."
//
// Model: each directed peer pair keeps a service balance in chunks. A
// provider serves a consumer only while the consumer's deficit (chunks
// taken minus chunks given back) stays within `allowance` — BitTorrent's
// unchoke allowance. No tokens move, so token income is identically zero;
// the "reward" is continued access, which the fairness benches measure via
// the served/refused counters.
#pragma once

#include <unordered_map>

#include "incentives/policy.hpp"

namespace fairswap::incentives {

class TitForTatPolicy final : public PaymentPolicy {
 public:
  /// `allowance` = how many chunks a peer may be in deficit before being
  /// choked (BitTorrent's optimistic-unchoke slack).
  explicit TitForTatPolicy(std::int64_t allowance = 8) noexcept
      : allowance_(allowance) {}

  [[nodiscard]] std::string name() const override { return "tit-for-tat"; }

  /// Chokes the delivery if any provider on the route has the preceding
  /// node beyond its deficit allowance.
  bool admit(PolicyContext& ctx, const Route& route) override;

  void on_delivery(PolicyContext& ctx, const Route& route) override;

  /// Forgets all service balances and the choke counter (epoch rewind).
  void reset() override;

  /// Net chunks `a` owes `b` (positive = a consumed more from b than it
  /// returned).
  [[nodiscard]] std::int64_t deficit(NodeIndex a, NodeIndex b) const;

  [[nodiscard]] std::uint64_t choked_deliveries() const noexcept {
    return choked_;
  }

 private:
  // Same packed-key hazard as SwapNetwork::pair_key: guard the width.
  static_assert(sizeof(NodeIndex) <= 4,
                "key packs two NodeIndex values into 64 bits");
  [[nodiscard]] static std::uint64_t key(NodeIndex a, NodeIndex b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::int64_t allowance_;
  // Net chunks the lower-indexed node owes the higher-indexed node.
  // fairswap-lint: allow(unordered-container) -- per-pair lookup in the
  // choke decision only, never enumerated.
  std::unordered_map<std::uint64_t, std::int64_t> balance_;
  std::uint64_t choked_{0};
};

}  // namespace fairswap::incentives
