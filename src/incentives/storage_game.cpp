#include "incentives/storage_game.hpp"

#include <cassert>

#include "storage/bmt.hpp"

namespace fairswap::incentives {

StorageGame::StorageGame(const overlay::Topology& topo,
                         StorageGameConfig config)
    : topo_(&topo),
      config_(config),
      stakes_(topo.node_count()),
      rewards_(topo.node_count()),
      faithful_(topo.node_count(), 1) {
  assert(config_.depth >= 0 && config_.depth <= topo.space().bits());
}

void StorageGame::set_stake(NodeIndex n, Token amount) {
  assert(!amount.negative());
  stakes_[n] = amount;
}

void StorageGame::set_faithful(NodeIndex n, bool faithful) {
  faithful_[n] = faithful ? 1 : 0;
}

std::vector<NodeIndex> StorageGame::neighborhood(Address anchor) const {
  std::vector<NodeIndex> members;
  for (NodeIndex n = 0; n < topo_->node_count(); ++n) {
    if (topo_->space().proximity(topo_->address_of(n), anchor) >=
        config_.depth) {
      members.push_back(n);
    }
  }
  return members;
}

RoundResult StorageGame::play_round(Rng& rng) {
  ++rounds_;
  RoundResult result;
  result.anchor =
      Address{static_cast<AddressValue>(rng.next_below(topo_->space().size()))};
  result.pot = carried_ + config_.round_pot;

  // Staked neighborhood members are the players.
  for (const NodeIndex n : neighborhood(result.anchor)) {
    if (stakes_[n] > Token(0)) result.players.push_back(n);
  }
  if (result.players.empty()) {
    carried_ = result.pot;  // nobody home: the pot rolls over
    return result;
  }

  // Stake-weighted draw.
  Token total_stake;
  for (const NodeIndex n : result.players) total_stake += stakes_[n];
  const auto ticket = static_cast<Token::rep>(
      rng.next_below(static_cast<std::uint64_t>(total_stake.base_units())));
  Token::rep cumulative = 0;
  NodeIndex drawn = result.players.front();
  for (const NodeIndex n : result.players) {
    cumulative += stakes_[n].base_units();
    if (ticket < cumulative) {
      drawn = n;
      break;
    }
  }
  result.drawn = drawn;

  // Proof of custody: the winner must open a sampled segment of a sampled
  // chunk from its responsibility region. Faithful nodes hold the data
  // and can always produce the proof; unfaithful nodes cannot.
  if (faithful_[drawn]) {
    // Construct and verify an actual BMT proof over synthetic chunk
    // content derived from the sampled address — the real cryptographic
    // check, not a boolean stub.
    const Address sampled{
        static_cast<AddressValue>(rng.next_below(topo_->space().size()))};
    std::vector<std::uint8_t> payload(storage::kChunkSize);
    SplitMix64 content(sampled.v);
    for (auto& b : payload) b = static_cast<std::uint8_t>(content.next());
    const auto address = storage::bmt_chunk_address(payload, payload.size());
    const std::size_t segment = rng.index(storage::kBranches);
    const auto proof = storage::bmt_prove(payload, payload.size(), segment);
    result.proof_valid = storage::bmt_verify(address, proof);
  } else {
    result.proof_valid = false;
  }

  if (result.proof_valid) {
    rewards_[drawn] += result.pot;
    result.paid = drawn;
    carried_ = Token(0);
    ++paid_rounds_;
  } else {
    ++proofs_failed_;
    carried_ = result.pot;  // rolls over to the next round
    // Slash the cheater (stake floors at zero).
    const Token slash = config_.slash_amount < stakes_[drawn]
                            ? config_.slash_amount
                            : stakes_[drawn];
    stakes_[drawn] -= slash;
  }
  return result;
}

std::size_t StorageGame::play(std::size_t rounds, Rng& rng) {
  std::size_t paid = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (play_round(rng).paid.has_value()) ++paid;
  }
  return paid;
}

std::vector<double> StorageGame::rewards_double() const {
  std::vector<double> out(rewards_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(rewards_[i].base_units());
  }
  return out;
}

}  // namespace fairswap::incentives
