#include "incentives/no_payment.hpp"

namespace fairswap::incentives {

void NoPaymentPolicy::on_delivery(PolicyContext& /*ctx*/,
                                  const Route& /*route*/) {}

}  // namespace fairswap::incentives
