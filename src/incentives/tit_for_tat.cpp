#include "incentives/tit_for_tat.hpp"

namespace fairswap::incentives {

std::int64_t TitForTatPolicy::deficit(NodeIndex a, NodeIndex b) const {
  const NodeIndex lo = a < b ? a : b;
  const NodeIndex hi = a < b ? b : a;
  const auto it = balance_.find(key(lo, hi));
  if (it == balance_.end()) return 0;
  return a == lo ? it->second : -it->second;
}

bool TitForTatPolicy::admit(PolicyContext& ctx, const Route& route) {
  if (!PaymentPolicy::admit(ctx, route)) return false;
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const NodeIndex consumer = route.path[i];
    const NodeIndex provider = route.path[i + 1];
    if (deficit(consumer, provider) + 1 > allowance_) {
      ++choked_;
      return false;
    }
  }
  return true;
}

void TitForTatPolicy::reset() {
  balance_.clear();
  choked_ = 0;
}

void TitForTatPolicy::on_delivery(PolicyContext& /*ctx*/, const Route& route) {
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    const NodeIndex consumer = route.path[i];
    const NodeIndex provider = route.path[i + 1];
    const NodeIndex lo = consumer < provider ? consumer : provider;
    const NodeIndex hi = consumer < provider ? provider : consumer;
    // One chunk of service flowed provider -> consumer.
    balance_[key(lo, hi)] += (consumer == lo) ? 1 : -1;
  }
}

}  // namespace fairswap::incentives
