// Effort-based rewards — the F2-targeted baseline.
//
// Rahman et al. (paper's ref [15]) "proposed to reward based on the
// willingness to share resources rather than based on the amount of actual
// resources shared, thus focusing on our fairness property F2 rather than
// F1." We model this as a per-step reward pool distributed among nodes in
// proportion to the bandwidth capacity they *offer*, independent of the
// traffic they actually carried. With equal offered capacities this yields
// a perfect F2 Gini of 0 by construction — and the ablation bench shows
// what it does to F1.
#pragma once

#include <vector>

#include "incentives/policy.hpp"

namespace fairswap::incentives {

class EffortBasedPolicy final : public PaymentPolicy {
 public:
  /// `offered_capacity[i]` is node i's advertised bandwidth (arbitrary
  /// units); empty means every node offers 1. `pool_per_step` is the total
  /// reward distributed after each file download.
  EffortBasedPolicy(std::vector<double> offered_capacity, Token pool_per_step);

  [[nodiscard]] std::string name() const override { return "effort-based"; }

  /// Deliveries still accrue SWAP relay debt (the network must meter
  /// usage) but trigger no payments.
  void on_delivery(PolicyContext& ctx, const Route& route) override;

  /// Distributes the per-step pool proportionally to offered capacity.
  void on_step_end(PolicyContext& ctx) override;

 private:
  std::vector<double> capacity_;
  double capacity_total_{0.0};
  Token pool_per_step_;
};

}  // namespace fairswap::incentives
