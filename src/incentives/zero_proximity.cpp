#include "incentives/zero_proximity.hpp"

namespace fairswap::incentives {

void ZeroProximityPolicy::on_delivery(PolicyContext& ctx, const Route& route) {
  if (route.hops() == 0) return;  // originator already stores the chunk

  const NodeIndex originator = route.originator();
  const NodeIndex first = route.first_hop();
  const Token first_price = ctx.price(first, route.target);

  if (ctx.is_free_rider(originator)) {
    // A free-riding originator withholds the paid settlement; the debt is
    // merely recorded and will amortize away.
    (void)ctx.swap->debit(originator, first, first_price, /*can_settle=*/false,
                          route.edge(0));
  } else {
    ctx.swap->pay_direct(originator, first, first_price);
  }

  // Downstream relays accrue SWAP debt only ("wait for time-based
  // amortization for other requests"): hop i consumed from hop i+1.
  for (std::size_t i = 1; i + 1 < route.path.size(); ++i) {
    const NodeIndex consumer = route.path[i];
    const NodeIndex provider = route.path[i + 1];
    (void)ctx.swap->debit(consumer, provider, ctx.price(provider, route.target),
                          /*can_settle=*/false, route.edge(i));
  }
}

}  // namespace fairswap::incentives
