// Storage incentives: a simplified Swarm redistribution game.
//
// The paper's §V closes with: "While creators of these networks claim
// that the storage incentive makes up the majority of the profit for
// peers contributing to the network, having not just the bandwidth
// incentives simulated but also the storage incentives appears needed to
// complete the simulation." This module supplies that missing layer,
// modelled on Swarm's redistribution lottery:
//
//  * Nodes stake tokens to participate.
//  * Each round, a uniformly random *anchor* address selects the
//    neighborhood of nodes whose overlay address shares at least
//    `depth` prefix bits with the anchor.
//  * One staked neighborhood member is drawn stake-weighted; before it
//    can claim the round pot it must present a valid BMT inclusion proof
//    for a sampled segment of a sampled chunk it is responsible for
//    (proof of custody). Nodes that do not actually store their
//    neighborhood's data fail the proof, forfeit the round (the pot
//    rolls over) and are slashed.
//
// The same Gini metrology then applies to storage rewards: with uniform
// node addresses, neighborhood sizes are skewed, so storage income
// concentrates — another face of the paper's F2 question.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/token.hpp"
#include "overlay/topology.hpp"
#include "storage/bmt_proof.hpp"

namespace fairswap::incentives {

using overlay::NodeIndex;

/// Game parameters.
struct StorageGameConfig {
  /// Neighborhood selector: nodes sharing >= depth prefix bits with the
  /// round anchor play. Swarm calls this the storage depth.
  int depth{4};
  /// Pot distributed per round (expired postage revenue).
  Token round_pot{Token::whole(1)};
  /// Stake a node loses when it wins the draw but fails the custody proof.
  Token slash_amount{Token(500'000'000)};
};

/// Outcome of one round.
struct RoundResult {
  Address anchor{};
  std::vector<NodeIndex> players;          ///< staked neighborhood members
  std::optional<NodeIndex> drawn;          ///< stake-weighted draw winner
  bool proof_valid{false};                 ///< custody proof verified?
  std::optional<NodeIndex> paid;           ///< who actually received the pot
  Token pot;                               ///< amount at stake this round
};

/// The redistribution game over a static topology.
class StorageGame {
 public:
  StorageGame(const overlay::Topology& topo, StorageGameConfig config);

  /// Stakes `amount` for node n (replaces any previous stake).
  void set_stake(NodeIndex n, Token amount);

  /// Marks whether node n faithfully stores its neighborhood's chunks.
  /// Unfaithful nodes fail custody proofs when drawn.
  void set_faithful(NodeIndex n, bool faithful);

  [[nodiscard]] Token stake(NodeIndex n) const { return stakes_[n]; }

  /// Plays one round with randomness from `rng`. The pot accumulates
  /// across failed rounds and pays out fully on the next honest win.
  RoundResult play_round(Rng& rng);

  /// Plays `rounds` rounds; returns how many paid out.
  std::size_t play(std::size_t rounds, Rng& rng);

  /// Cumulative storage rewards per node.
  [[nodiscard]] const std::vector<Token>& rewards() const noexcept {
    return rewards_;
  }
  /// Rewards as doubles (for the Gini helpers).
  [[nodiscard]] std::vector<double> rewards_double() const;

  [[nodiscard]] std::uint64_t rounds_played() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t rounds_paid() const noexcept {
    return paid_rounds_;
  }
  [[nodiscard]] std::uint64_t proofs_failed() const noexcept {
    return proofs_failed_;
  }
  [[nodiscard]] Token carried_pot() const noexcept { return carried_; }
  [[nodiscard]] const StorageGameConfig& config() const noexcept {
    return config_;
  }

  /// The neighborhood a given anchor selects (all nodes, staked or not).
  [[nodiscard]] std::vector<NodeIndex> neighborhood(Address anchor) const;

 private:
  const overlay::Topology* topo_;
  StorageGameConfig config_;
  std::vector<Token> stakes_;
  std::vector<Token> rewards_;
  std::vector<std::uint8_t> faithful_;
  Token carried_;
  std::uint64_t rounds_{0};
  std::uint64_t paid_rounds_{0};
  std::uint64_t proofs_failed_{0};
};

}  // namespace fairswap::incentives
