#include "engine/event_queue.hpp"

#include <utility>

namespace fairswap::engine {

void EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_after(SimTime delay, Callback cb) {
  schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the
  // standard workaround, safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ev.cb(now_);
  return true;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    run_next();
    ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

std::size_t EventQueue::run_all() {
  std::size_t fired = 0;
  while (run_next()) ++fired;
  return fired;
}

}  // namespace fairswap::engine
