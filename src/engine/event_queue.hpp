// A discrete-event queue with a monotone clock and stable FIFO ordering
// for simultaneous events. Drives the temporal extensions the step-based
// engine cannot express: time-based amortization dynamics, churn, and
// latency modelling.
//
// Concurrency boundary: EventQueue is thread-compatible, not thread-safe
// — it carries no lock on purpose. Every instance is owned by exactly one
// simulation, and every simulation is owned by exactly one TaskPool task;
// parallelism stays *between* queues, never inside one. The
// `shared-capture` fairswap_lint rule enforces the boundary statically (a
// queue cannot be ref-captured into a parallel_for lambda without a
// reasoned allow), and the TSan CI job backstops it dynamically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fairswap::engine {

/// Simulated time in abstract ticks.
using SimTime = std::uint64_t;

/// A deterministic discrete-event executor. Events scheduled for the same
/// time fire in scheduling order (stable via sequence numbers), which keeps
/// runs reproducible.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime now)>;

  /// Schedules `cb` at absolute time `when`. Scheduling in the past fires
  /// at the current time (immediately on the next run).
  void schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` `delay` ticks after the current time.
  void schedule_after(SimTime delay, Callback cb);

  /// Pops and executes the earliest event; returns false when empty.
  bool run_next();

  /// Runs all events with time <= `until`; returns how many fired.
  std::size_t run_until(SimTime until);

  /// Runs until the queue is empty; returns how many fired.
  std::size_t run_all();

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_{0};
  std::uint64_t next_seq_{0};
};

}  // namespace fairswap::engine
