// A typed cadCAD-style simulation engine.
//
// The paper's simulator is built on cadCAD ("the cadCAD simulation engine
// is used to create the simulation phases"). cadCAD structures a run as a
// sequence of *partial state update blocks*; within a block, *policy
// functions* read the (immutable) current state and emit signals, then
// *state update functions* consume the aggregated signals and produce the
// next state. We reproduce those semantics with static types instead of
// Python dicts:
//
//   Engine<State, Signals> engine;
//   engine.add_block({.label = "download",
//                     .policies = {pick_originator, pick_chunks},
//                     .updaters = {route_and_account}});
//   engine.run(initial_state, 10'000);
//
// Policies within a block all observe the same pre-block state (enforced
// by const&); updaters run in order and may mutate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fairswap::engine {

/// One partial state update block (cadCAD terminology).
template <typename State, typename Signals>
struct Block {
  std::string label;
  /// Policies read state, write signals. All policies of a block see the
  /// same pre-block state.
  std::vector<
      std::function<void(const State&, std::uint64_t timestep, Signals&)>>
      policies;
  /// Updaters consume the block's signals and advance the state, in order.
  std::vector<
      std::function<void(State&, const Signals&, std::uint64_t timestep)>>
      updaters;
};

/// Per-run observation hooks.
template <typename State>
struct Hooks {
  /// Called after every timestep with the post-step state.
  std::function<void(const State&, std::uint64_t timestep)> on_timestep;
  /// Called once with the final state.
  std::function<void(const State&)> on_finish;
};

/// Deterministic block-sequenced engine. `Signals` must be
/// default-constructible; a fresh Signals value is created for each block
/// execution (cadCAD's per-substep signal aggregation).
template <typename State, typename Signals>
class Engine {
 public:
  Engine& add_block(Block<State, Signals> block) {
    blocks_.push_back(std::move(block));
    return *this;
  }

  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  /// Runs `timesteps` steps over `state`, mutating it in place, and
  /// returns the number of block executions performed.
  std::uint64_t run(State& state, std::uint64_t timesteps,
                    const Hooks<State>& hooks = {}) const {
    std::uint64_t executed = 0;
    for (std::uint64_t t = 1; t <= timesteps; ++t) {
      for (const auto& block : blocks_) {
        Signals signals{};
        const State& frozen = state;  // policies get a const view
        for (const auto& policy : block.policies) policy(frozen, t, signals);
        for (const auto& updater : block.updaters) updater(state, signals, t);
        ++executed;
      }
      if (hooks.on_timestep) hooks.on_timestep(state, t);
    }
    if (hooks.on_finish) hooks.on_finish(state);
    return executed;
  }

 private:
  std::vector<Block<State, Signals>> blocks_;
};

}  // namespace fairswap::engine
