#include "harness/plan.hpp"

#include <array>
#include <optional>
#include <thread>

#include "agents/epoch.hpp"
#include "common/telemetry/span.hpp"
#include "core/task_pool.hpp"
#include "harness/binding.hpp"

namespace fairswap::harness {

namespace {

/// Caps runaway cartesian products before they allocate.
constexpr std::size_t kMaxRuns = 1'000'000;

std::string assignment_label(
    const std::vector<std::pair<std::string, std::string>>& assignment) {
  std::string label;
  for (const auto& [key, value] : assignment) {
    if (!label.empty()) label += ", ";
    label += key + "=" + value;
  }
  return label;
}

/// The per-(run, seed) state run_plan keeps — everything MetricStats
/// folds plus the sim-plane counter snapshot, nothing per-node. The
/// scalars must stay in sync with fold_cell/add_cell.
struct Cell {
  std::array<double, 25> scalars{};
  telemetry::CounterBlock counters;
};

/// `final_prevalence`/`converged_epoch` come from the epoch game on
/// agents-aware runs (-1 = did not converge); both are 0 on flat runs.
Cell extract(const core::ExperimentResult& r, double final_prevalence,
             double converged_epoch) {
  Cell cell;
  cell.counters = r.counters;
  cell.scalars = {r.fairness.gini_f2,
              r.fairness.gini_f1,
              r.fairness.gini_f1_income,
              r.avg_forwarded_chunks,
              r.routing_success,
              r.total_income,
              r.outstanding_debt,
              static_cast<double>(r.settlement_count),
              static_cast<double>(r.totals.total_transmissions),
              static_cast<double>(r.totals.delivered),
              static_cast<double>(r.totals.failed_routes),
              static_cast<double>(r.totals.truncated_routes),
              static_cast<double>(r.cache_serves),
              r.totals.fct_p50,
              r.totals.fct_p99,
              r.totals.fct_mean,
              static_cast<double>(r.totals.flows_timed_out),
              static_cast<double>(r.totals.saturated_links),
              r.runtime_seconds,
              r.hops_p50,
              r.hops_p99,
              r.served_p99,
              r.income_p99,
              final_prevalence,
              converged_epoch};
  return cell;
}

void fold_cell(MetricStats& stats, const Cell& cell) {
  const std::array<double, 25>& s = cell.scalars;
  stats.gini_f2.add(s[0]);
  stats.gini_f1.add(s[1]);
  stats.gini_f1_income.add(s[2]);
  stats.avg_forwarded.add(s[3]);
  stats.routing_success.add(s[4]);
  stats.total_income.add(s[5]);
  stats.outstanding_debt.add(s[6]);
  stats.settlements.add(s[7]);
  stats.total_transmissions.add(s[8]);
  stats.delivered.add(s[9]);
  stats.failed_routes.add(s[10]);
  stats.truncated_routes.add(s[11]);
  stats.cache_serves.add(s[12]);
  stats.fct_p50.add(s[13]);
  stats.fct_p99.add(s[14]);
  stats.fct_mean.add(s[15]);
  stats.flows_timed_out.add(s[16]);
  stats.saturated_links.add(s[17]);
  stats.runtime_s.add(s[18]);
  stats.hops_p50.add(s[19]);
  stats.hops_p99.add(s[20]);
  stats.served_p99.add(s[21]);
  stats.income_p99.add(s[22]);
  stats.final_prevalence.add(s[23]);
  stats.converged_epoch.add(s[24]);
}

/// One (run, seed) cell. Flat configs run a plain experiment; configs
/// with epochs > 0 run the strategic-agents epoch game over the shared
/// topology (Simulation::reset reuses the compiled arenas every epoch)
/// and report the final epoch's state plus the equilibrium outputs —
/// the PR-5 "agents-aware sweep" gap.
Cell run_cell(const overlay::Topology& topo, core::ExperimentConfig cfg) {
  if (cfg.agents.epochs == 0) {
    return extract(core::run_experiment(topo, cfg), 0.0, 0.0);
  }
  const std::uint64_t start_ns = telemetry::wall_now_ns();
  agents::EpochDriver driver(topo, cfg);
  const agents::EpochSeries series = driver.run();
  const double runtime =
      static_cast<double>(telemetry::wall_now_ns() - start_ns) * 1e-9;
  // After run() the simulation still holds the final epoch's play — the
  // equilibrium snapshot package_experiment turns into Gini/income/route
  // metrics.
  const core::ExperimentResult result =
      core::package_experiment(cfg, driver.simulation(), runtime);
  const double converged =
      series.converged ? static_cast<double>(series.converged_epoch) : -1.0;
  Cell cell = extract(result, series.final_prevalence, converged);
  // package_experiment saw only the final epoch's counters (reset wipes
  // the sim's block every epoch); the driver accumulated the full game.
  cell.counters = driver.telem();
  return cell;
}

}  // namespace

bool expand(const ExperimentPlan& plan, std::vector<PlannedRun>& out,
            std::string& error) {
  out.clear();
  const BindingTable& table = BindingTable::instance();

  std::size_t total = 1;
  for (const SweepAxis& axis : plan.axes) {
    if (!table.find(axis.key)) {
      error = "unknown sweep axis '" + axis.key + "'";
      return false;
    }
    if (axis.key == "seed") {
      // Execution derives per-run seeds from base.seed + seeds=N; a seed
      // axis would be silently overwritten into N identical runs.
      error = "'seed' cannot be a sweep axis - use seeds=N for multi-seed "
              "runs (seed=K sets the base seed)";
      return false;
    }
    if (axis.key == "trace_in" || axis.key == "trace_out") {
      // Per-axis trace paths would dodge the driver's upfront trace
      // validation (which reads plan.base) and, for trace_out, the
      // single-writer guarantee below; record/replay one trace per
      // invocation instead.
      error = "'" + axis.key + "' cannot be a sweep axis - run one " +
              "record/replay per invocation";
      return false;
    }
    if (axis.values.empty()) {
      error = "sweep axis '" + axis.key + "' has no values";
      return false;
    }
    if (axis.values.size() > kMaxRuns / total) {
      error = "sweep expands to more than " + std::to_string(kMaxRuns) +
              " runs";
      return false;
    }
    total *= axis.values.size();
  }

  // Topology-equal groups, numbered in first-appearance order. All runs
  // share the plan's seed list, so the group key is the topology config
  // alone.
  std::vector<overlay::TopologyConfig> group_reps;

  out.reserve(total);
  for (std::size_t run_index = 0; run_index < total; ++run_index) {
    PlannedRun run;
    run.index = run_index;
    run.config = plan.base;

    // Mixed-radix decode, last axis fastest (innermost loop).
    std::size_t rest = run_index;
    std::vector<std::size_t> choice(plan.axes.size(), 0);
    for (std::size_t i = plan.axes.size(); i-- > 0;) {
      choice[i] = rest % plan.axes[i].values.size();
      rest /= plan.axes[i].values.size();
    }
    for (std::size_t i = 0; i < plan.axes.size(); ++i) {
      const SweepAxis& axis = plan.axes[i];
      const std::string& value = axis.values[choice[i]];
      std::string err = table.apply(run.config, axis.key, value);
      if (!err.empty()) {
        error = err;
        return false;
      }
      run.assignment.emplace_back(axis.key, value);
    }

    std::string err = validate(run.config);
    if (!err.empty()) {
      error = plan.axes.empty()
                  ? err
                  : assignment_label(run.assignment) + ": " + err;
      return false;
    }

    if (!plan.axes.empty()) {
      run.config.label = assignment_label(run.assignment);
    } else if (run.config.label.empty()) {
      run.config.label = "run";
    }

    run.topology_group = group_reps.size();
    for (std::size_t g = 0; g < group_reps.size(); ++g) {
      if (group_reps[g] == run.config.topology) {
        run.topology_group = g;
        break;
      }
    }
    if (run.topology_group == group_reps.size()) {
      group_reps.push_back(run.config.topology);
    }

    out.push_back(std::move(run));
  }

  // Agents-aware sweeps: epochs > 0 switches a cell onto the epoch-game
  // path (run_cell). Setting the other agent knobs without epochs= would
  // silently run flat cells that ignore them — the same silent-no-op
  // class expand() rejects for a 'seed' axis — so demand the switch.
  // Epoch cells generate their own per-epoch workload, which a recorded
  // or replayed trace cannot represent.
  for (const PlannedRun& run : out) {
    if (run.config.agents.epochs == 0) {
      if (!(run.config.agents == core::AgentsConfig{})) {
        error =
            "files_per_epoch/dynamics/revision_rate/noise/bandwidth_cost/"
            "initial_free_riders shape the epoch game; set epochs= (or an "
            "epochs axis) to run agents-aware cells";
        return false;
      }
    } else if (!run.config.trace_in.empty() ||
               !run.config.trace_out.empty()) {
      error = "epochs: the epoch game generates one workload per epoch and "
              "cannot record or replay a trace (drop trace_in/trace_out)";
      return false;
    }
  }

  // One trace file cannot record several workloads: with more than one
  // (run x seed) cell writing the same path, every cell would open and
  // truncate it concurrently and the survivor would hold an arbitrary
  // cell's requests. (Replaying one trace into many cells via trace_in
  // is fine — that is the paper's same-workload comparison.)
  const std::size_t seeds = std::max<std::size_t>(1, plan.seeds);
  std::vector<std::string> trace_outs;
  for (const PlannedRun& run : out) {
    if (run.config.trace_out.empty()) continue;
    if (seeds > 1) {
      error = "trace_out: recording needs seeds=1 (every seed would "
              "overwrite " +
              run.config.trace_out + ")";
      return false;
    }
    for (const std::string& seen : trace_outs) {
      if (seen == run.config.trace_out) {
        error = "trace_out: multiple runs would overwrite " +
                run.config.trace_out + " (record one cell at a time)";
        return false;
      }
    }
    trace_outs.push_back(run.config.trace_out);
  }

  // A replayed trace *is* the workload, so axes that only shape workload
  // generation cannot distinguish cells: the sweep would print N
  // identical rows labeled as a parameter sweep (the same silent-no-op
  // class as a 'seed' axis). Topology and policy axes remain fine — one
  // workload against many configurations is the paper's comparison.
  bool any_replay = false;
  for (const PlannedRun& run : out) {
    any_replay = any_replay || !run.config.trace_in.empty();
  }
  if (any_replay) {
    for (const SweepAxis& axis : plan.axes) {
      const Binding* binding = table.find(axis.key);
      if (binding && binding->workload_generation) {
        error = axis.key +
                ": a replayed trace fixes the workload, so this axis "
                "cannot vary the cells (drop it or drop trace_in)";
        return false;
      }
    }
  }
  return true;
}

PlanSummary summarize(const ExperimentPlan& plan, std::size_t run_count) {
  PlanSummary summary;
  summary.title = plan.title;
  summary.base = BindingTable::instance().snapshot(plan.base);
  for (const SweepAxis& axis : plan.axes) {
    summary.axes.emplace_back(axis.key, axis.values);
  }
  summary.seeds = std::max<std::size_t>(1, plan.seeds);
  summary.threads = plan.threads;
  summary.run_count = run_count;
  return summary;
}

bool run_plan(const ExperimentPlan& plan, std::span<MetricSink* const> sinks,
              std::string& error, std::ostream* progress) {
  std::vector<PlannedRun> runs;
  if (!expand(plan, runs, error)) return false;

  const std::size_t seeds = std::max<std::size_t>(1, plan.seeds);
  std::size_t threads = plan.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  std::vector<std::vector<std::size_t>> groups;
  for (const PlannedRun& run : runs) {
    if (run.topology_group >= groups.size()) {
      groups.resize(run.topology_group + 1);
    }
    groups[run.topology_group].push_back(run.index);
  }

  if (progress) {
    *progress << "plan '" << plan.title << "': " << runs.size() << " runs x "
              << seeds << " seeds (" << groups.size()
              << " topology groups, " << threads << " threads)\n";
    progress->flush();
  }

  const PlanSummary summary = summarize(plan, runs.size());
  for (MetricSink* sink : sinks) sink->begin(summary);

  // One task per (topology group, seed): build the group's overlay once,
  // run every member config on it, keep only the folded scalars. The
  // cells vector is the whole cross-run memory footprint.
  std::vector<Cell> cells(runs.size() * seeds);
  const std::size_t task_count = groups.size() * seeds;
  const auto run_task = [&](std::size_t task) {
    const std::size_t group = task / seeds;
    const std::size_t seed_index = task % seeds;
    const std::uint64_t seed = plan.base.seed + seed_index;

    core::ExperimentConfig topo_cfg = runs[groups[group][0]].config;
    topo_cfg.seed = seed;
    const overlay::Topology topo = core::build_topology(topo_cfg);
    for (const std::size_t run_index : groups[group]) {
      core::ExperimentConfig cfg = runs[run_index].config;
      cfg.seed = seed;
      cells[run_index * seeds + seed_index] = run_cell(topo, cfg);
    }
  };

  {
    TELEM_SPAN("run_cells");
    if (threads <= 1 || task_count <= 1) {
      for (std::size_t t = 0; t < task_count; ++t) run_task(t);
    } else {
      core::TaskPool pool(std::min(threads, task_count));
      // fairswap-lint: allow(shared-capture) -- run_task writes only
      // cells[run_index * seeds + seed_index], and (group, seed) tasks
      // partition those indices: every worker owns disjoint slots, and the
      // fold below runs after parallel_for's barrier, single-threaded.
      pool.parallel_for(task_count, run_task);
      if constexpr (telemetry::kEnabled) {
        // Wall-plane pool utilization for this phase: busy share of the
        // job's wall time, summed over the pool's threads. Progress
        // output only — never a sink artifact.
        if (progress) {
          std::uint64_t busy = 0;
          std::uint64_t idle = 0;
          std::uint64_t items = 0;
          std::uint64_t chunks = 0;
          for (const core::WorkerStats& ws : pool.worker_stats()) {
            busy += ws.busy_ns;
            idle += ws.idle_ns;
            items += ws.items;
            chunks += ws.chunks;
          }
          const double util =
              busy + idle > 0
                  ? static_cast<double>(busy) /
                        static_cast<double>(busy + idle)
                  : 0.0;
          *progress << "pool: " << pool.worker_stats().size()
                    << " threads ran " << items << " cells in " << chunks
                    << " chunks, utilization "
                    << static_cast<int>(util * 100.0 + 0.5) << "%\n";
          progress->flush();
        }
      }
    }
  }

  // Fold per run in seed order on this thread — the same RunningStats
  // add() sequence for any thread count — and stream in expansion order.
  // Counter blocks merge the same way (integer adds, order-invariant).
  TELEM_SPAN("fold_and_stream");
  for (const PlannedRun& run : runs) {
    RunRecord record;
    record.index = run.index;
    record.label = run.config.label;
    record.assignment = run.assignment;
    record.seeds = seeds;
    for (std::size_t si = 0; si < seeds; ++si) {
      const Cell& cell = cells[run.index * seeds + si];
      fold_cell(record.metrics, cell);
      record.counters.merge(cell.counters);
    }
    for (MetricSink* sink : sinks) sink->record(record);
  }
  for (MetricSink* sink : sinks) sink->end();
  return true;
}

std::vector<core::ExperimentResult> run_grid(
    std::span<const core::ExperimentConfig> configs,
    const std::function<void(const core::ExperimentConfig&)>& on_run) {
  // Group by (topology config, seed); remember each group's last user so
  // the overlay is released as soon as nothing later needs it.
  struct Group {
    overlay::TopologyConfig tcfg;
    std::uint64_t seed{0};
    std::size_t last_use{0};
    std::optional<overlay::Topology> topo;
  };
  std::vector<Group> groups;
  std::vector<std::size_t> group_of(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::size_t g = groups.size();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (groups[j].tcfg == configs[i].topology &&
          groups[j].seed == configs[i].seed) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) {
      groups.push_back(Group{configs[i].topology, configs[i].seed, i, {}});
    }
    groups[g].last_use = i;
    group_of[i] = g;
  }

  std::vector<core::ExperimentResult> results;
  results.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::ExperimentConfig& cfg = configs[i];
    if (on_run) on_run(cfg);
    Group& group = groups[group_of[i]];
    if (!group.topo) group.topo = core::build_topology(cfg);
    results.push_back(core::run_experiment(*group.topo, cfg));
    if (group.last_use == i) group.topo.reset();
  }
  return results;
}

}  // namespace fairswap::harness
