// The heavy-traffic scenario: a 10M+-request demand stream (Zipf catalog
// popularity + flash crowd + upload mix) pushed through sharded
// simulations whose distributions are kept as bounded-memory streaming
// sketches (common/stream_stats) instead of per-request vectors. The
// scenario is its own acceptance harness: it checks the sketch against an
// exact sort oracle on a subsample, replays shard 0 through
// Simulation::reset for bit-identity, re-merges the shards in reverse
// order to witness merge-order invariance, and (optionally) gates peak
// RSS — the CI smoke runs it with max_rss_mb= set.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/mem.hpp"
#include "common/table.hpp"
#include "common/telemetry/counters.hpp"
#include "common/telemetry/span.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "core/simulation.hpp"
#include "core/task_pool.hpp"
#include "harness/binding.hpp"
#include "harness/scenario.hpp"

namespace fairswap::harness {

namespace {

/// How many leading hop values shard 0 keeps exactly as the oracle
/// subsample (ISSUE 9: "a 100k-request subsample").
constexpr std::size_t kOracleSample = 100'000;

/// One shard's outcome: the streaming aggregates plus the totals needed
/// for the conservation check and the report.
struct ShardResult {
  core::StreamAggregates stream;
  core::SimulationTotals totals;
  /// Sim-plane telemetry counters — merged in canonical shard order
  /// alongside the sketches and held to the same invariance gates.
  telemetry::CounterBlock counters;
  /// Hop-sketch fingerprint of the record -> reset -> replay rerun
  /// (shard 0 only; 0 elsewhere).
  std::uint64_t replay_fingerprint{0};
  bool replayed{false};
};

/// Runs one shard to its chunk-request quota. The quota is a lower bound
/// hit at a file boundary (a file's last chunks may overshoot), which is
/// deterministic for a given (config, rng) regardless of who runs it.
ShardResult run_shard(const overlay::Topology& topo,
                      const core::SimulationConfig& sim_cfg, Rng rng,
                      std::uint64_t quota, bool replay_check) {
  TELEM_SPAN("run_shard");
  core::Simulation sim(topo, sim_cfg, rng);
  while (sim.totals().chunk_requests < quota) sim.step();
  ShardResult r;
  r.stream = sim.stream();
  r.totals = sim.totals();
  r.counters = sim.telem();
  if (replay_check) {
    sim.reset(rng);
    while (sim.totals().chunk_requests < quota) sim.step();
    r.replay_fingerprint = sim.stream().hops.fingerprint();
    r.replayed = true;
  }
  return r;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

// --- heavy_traffic ------------------------------------------------------
//
// "A 10M-request heavy_traffic run completes with bounded aggregation
// memory, reports streaming percentiles within the sketch's documented
// error bound of the exact oracle on a 100k-request subsample, and is
// bit-identical across threads=1 vs threads=8 and across record -> replay
// via Simulation::reset" (ISSUE 9 acceptance).
int scenario_heavy_traffic(ScenarioContext& ctx) {
  if (ctx.args.has("files")) {
    print(ctx.os(), "error: heavy_traffic is request-quota driven; use "
                    "requests=, not files=\n");
    return 2;
  }
  const auto requests =
      ctx.args.get_or("requests", std::uint64_t{1'000'000});
  // Shard count is a workload parameter, deliberately independent of
  // threads=: the shard seeds and the canonical merge order are fixed, so
  // any thread count produces the same bits.
  const auto shards = ctx.args.get_or("shards", std::uint64_t{8});
  const auto max_rss_mb = ctx.args.get_or("max_rss_mb", std::uint64_t{0});
  std::string parse_error = ctx.args.last_error();
  if (!parse_error.empty()) {
    print(ctx.os(), "error: %s\n", parse_error.c_str());
    return 2;
  }
  if (requests == 0 || shards == 0) {
    print(ctx.os(), "error: requests= and shards= must be positive\n");
    return 2;
  }

  // Scenario defaults: the paper grid cell plus a fully composed demand
  // process. Every knob below is a regular binding, so CLI overrides run
  // through the same strict table as sweeps.
  core::ExperimentConfig cfg = core::paper_config(4, 1.0, /*files=*/0,
                                                  ctx.seed);
  cfg.label = "heavy_traffic";
  cfg.sim.demand.kind = workload::DemandConfig::Kind::kZipf;
  cfg.sim.demand.zipf_s = 0.9;
  cfg.sim.demand.burst_start = 1'000;
  cfg.sim.demand.burst_files = 5'000;
  cfg.sim.demand.burst_share = 0.5;
  cfg.sim.workload.upload_share = 0.1;
  cfg.sim.stream_metrics = true;

  static const std::vector<std::string> reserved = {
      "files", "seed", "out", "threads", "verbose",
      "requests", "shards", "max_rss_mb"};
  const auto errors =
      BindingTable::instance().apply_all(cfg, ctx.args, reserved);
  for (const std::string& err : errors) {
    print(ctx.os(), "error: %s\n", err.c_str());
  }
  if (!errors.empty()) return 2;
  const std::string invalid = validate(cfg);
  if (!invalid.empty()) {
    print(ctx.os(), "error: %s\n", invalid.c_str());
    return 2;
  }

  banner(ctx.os(), "Heavy traffic: streaming bounded-memory aggregation");
  print(ctx.os(),
        "%" PRIu64 " chunk requests across %" PRIu64 " shards "
        "(seed %" PRIu64 ")...\n",
        requests, shards, ctx.seed);
  ctx.os().flush();

  const overlay::Topology topo = core::build_topology(cfg);
  const Rng root(cfg.seed);

  std::vector<ShardResult> results(shards);
  const auto shard_task = [&](std::size_t s) {
    // Quota split: remainder spread over the leading shards.
    const std::uint64_t quota =
        requests / shards + (s < requests % shards ? 1 : 0);
    core::SimulationConfig sim_cfg = cfg.sim;
    // Shard 0 keeps the exact subsample the oracle check reads.
    sim_cfg.stream_sample_cap = s == 0 ? kOracleSample : 0;
    results[s] = run_shard(topo, sim_cfg, root.split(1).split(s), quota,
                           /*replay_check=*/s == 0);
  };

  std::size_t threads = ctx.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1 || shards <= 1) {
    for (std::size_t s = 0; s < shards; ++s) shard_task(s);
  } else {
    core::TaskPool pool(std::min<std::size_t>(threads, shards));
    // fairswap-lint: allow(shared-capture) -- shard_task writes only
    // results[s] and each s runs exactly once; the merge below runs after
    // parallel_for's barrier, single-threaded.
    pool.parallel_for(shards, shard_task);
  }

  // Canonical fold: shard order 0..S-1. Integer-count sketch merges are
  // exact, so this is the same result any thread schedule produces.
  TELEM_SPAN("fold_shards");
  core::StreamAggregates merged;
  telemetry::CounterBlock merged_counters;
  std::uint64_t chunk_requests = 0, delivered = 0, refused = 0;
  std::uint64_t failed = 0, truncated = 0, files = 0, uploads = 0;
  for (const ShardResult& r : results) {
    merged.merge(r.stream);
    merged_counters.merge(r.counters);
    chunk_requests += r.totals.chunk_requests;
    delivered += r.totals.delivered;
    refused += r.totals.refused;
    failed += r.totals.failed_routes;
    truncated += r.totals.truncated_routes;
    files += r.totals.files;
    uploads += r.totals.upload_files;
  }
  // Witness merge-order invariance on the real data: reverse-order fold
  // must produce the same bits (the unit suite proves it in general).
  core::StreamAggregates reversed;
  telemetry::CounterBlock reversed_counters;
  for (std::size_t s = shards; s-- > 0;) {
    reversed.merge(results[s].stream);
    reversed_counters.merge(results[s].counters);
  }
  const bool merge_invariant =
      merged.hops.fingerprint() == reversed.hops.fingerprint() &&
      merged.chunks_per_file.fingerprint() ==
          reversed.chunks_per_file.fingerprint() &&
      merged_counters == reversed_counters;

  // Sketch-vs-oracle differential on shard 0's exact subsample: a sketch
  // fed exactly those values must land every quantile within the
  // documented relative error bound of the sorted-order statistic.
  const std::vector<double>& sample = results[0].stream.hops_sample;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  PercentileSketch sample_sketch;
  for (const double v : sample) sample_sketch.add(v);
  const double bound = sample_sketch.relative_error_bound();
  bool oracle_ok = !sorted.empty();
  const double quantiles[] = {0.50, 0.90, 0.99};
  double oracle_exact[3] = {0, 0, 0}, oracle_sketch[3] = {0, 0, 0};
  for (std::size_t i = 0; i < 3; ++i) {
    const double q = quantiles[i];
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::max<std::size_t>(1, std::min(rank, sorted.size()));
    oracle_exact[i] = sorted.empty() ? 0.0 : sorted[rank - 1];
    oracle_sketch[i] = sample_sketch.quantile(q);
    oracle_ok = oracle_ok &&
                std::abs(oracle_sketch[i] - oracle_exact[i]) <=
                    bound * std::abs(oracle_exact[i]) + 1e-12;
  }

  const bool replay_identical =
      results[0].replayed &&
      results[0].replay_fingerprint == results[0].stream.hops.fingerprint();
  const bool conserved =
      delivered + refused + failed + truncated == chunk_requests;
  const std::uint64_t peak_rss = peak_rss_bytes();
  const double peak_rss_mb =
      static_cast<double>(peak_rss) / (1024.0 * 1024.0);
  const bool rss_ok =
      max_rss_mb == 0 || peak_rss <= max_rss_mb * 1024u * 1024u;

  TextTable table({"metric", "value"});
  table.add_row({"chunk requests", std::to_string(chunk_requests)});
  table.add_row({"files (uploads)", std::to_string(files) + " (" +
                                        std::to_string(uploads) + ")"});
  table.add_row({"hops p50", TextTable::num(merged.hops.quantile(0.50), 3)});
  table.add_row({"hops p90", TextTable::num(merged.hops.quantile(0.90), 3)});
  table.add_row({"hops p99", TextTable::num(merged.hops.quantile(0.99), 3)});
  table.add_row({"chunks/file p50",
                 TextTable::num(merged.chunks_per_file.quantile(0.50), 3)});
  table.add_row({"sketch rel. error bound", TextTable::num(bound, 5)});
  table.add_row({"peak RSS (MB)", TextTable::num(peak_rss_mb, 1)});
  table.add_row({"oracle within bound", oracle_ok ? "yes" : "NO"});
  table.add_row({"reset replay identical", replay_identical ? "yes" : "NO"});
  table.add_row({"merge order invariant", merge_invariant ? "yes" : "NO"});
  table.add_row({"request conservation", conserved ? "yes" : "NO"});
  if (max_rss_mb > 0) {
    table.add_row({"RSS gate (<= " + std::to_string(max_rss_mb) + " MB)",
                   rss_ok ? "yes" : "NO"});
  }
  print(ctx.os(), "%s", table.render().c_str());

  std::ostringstream doc;
  {
    JsonWriter json(doc);
    json.open();
    json.field("schema", "fairswap.heavy_traffic.v1");
    json.field("requests", chunk_requests);
    json.field("requested_quota", requests);
    json.field("shards", shards);
    json.field("seed", cfg.seed);
    json.field("files", files);
    json.field("upload_files", uploads);
    json.open("hops");
    json.field("count", merged.hops.count());
    json.field("p50", merged.hops.quantile(0.50));
    json.field("p90", merged.hops.quantile(0.90));
    json.field("p99", merged.hops.quantile(0.99));
    json.field("fingerprint", hex64(merged.hops.fingerprint()));
    json.close();
    json.open("chunks_per_file");
    json.field("count", merged.chunks_per_file.count());
    json.field("p50", merged.chunks_per_file.quantile(0.50));
    json.field("p99", merged.chunks_per_file.quantile(0.99));
    json.close();
    if constexpr (telemetry::kEnabled) {
      // Sim-plane counters, canonical fold over shards — same
      // bit-identity contract as the sketch fingerprints above.
      json.open("counters");
      merged_counters.for_each(
          [&](std::string_view name, std::uint64_t value) {
            json.field(std::string(name).c_str(), value);
          });
      json.field("fingerprint", hex64(merged_counters.fingerprint()));
      json.close();
    }
    json.open("oracle");
    json.field("sample", sorted.size());
    json.field("relative_error_bound", bound);
    json.field("p50_exact", oracle_exact[0]);
    json.field("p50_sketch", oracle_sketch[0]);
    json.field("p90_exact", oracle_exact[1]);
    json.field("p90_sketch", oracle_sketch[1]);
    json.field("p99_exact", oracle_exact[2]);
    json.field("p99_sketch", oracle_sketch[2]);
    json.field("within_bound", oracle_ok);
    json.close();
    json.field("replay_identical", replay_identical);
    json.field("merge_order_invariant", merge_invariant);
    json.field("request_conservation", conserved);
    json.field("peak_rss_mb", peak_rss_mb);
    json.field("max_rss_mb", max_rss_mb);
    json.field("rss_within_gate", rss_ok);
    json.close();
  }
  doc << "\n";
  const std::string path = ctx.out_dir + "/RUN_heavy_traffic.json";
  if (!core::write_text_file(path, doc.str())) {
    print(ctx.os(), "error: cannot write %s\n", path.c_str());
    return 1;
  }
  print(ctx.os(), "wrote %s (schema fairswap.heavy_traffic.v1)\n",
        path.c_str());

  if (!oracle_ok || !replay_identical || !merge_invariant || !conserved) {
    print(ctx.os(), "ERROR: streaming-aggregation invariant violated (see "
                    "table above)\n");
    return 1;
  }
  if (!rss_ok) {
    print(ctx.os(),
          "ERROR: peak RSS %.1f MB exceeds the max_rss_mb=%" PRIu64
          " gate — aggregation memory is not bounded\n",
          peak_rss_mb, max_rss_mb);
    return 1;
  }
  return 0;
}

}  // namespace

void register_heavy_scenarios() {
  ScenarioRegistry::instance().add(
      {"heavy_traffic",
       "sharded 1M+-request demand stream with streaming sketch metrics "
       "(+ oracle, replay, memory checks)",
       0, &scenario_heavy_traffic,
       {"requests", "shards", "max_rss_mb", "nodes", "bits", "k",
        "originators", "min_chunks", "max_chunks", "catalog", "catalog_zipf",
        "demand", "zipf_s", "burst_start", "burst_files", "burst_share",
        "diurnal_period", "diurnal_amp", "upload_mix", "upload_share",
        "policy", "pricer", "cache"}});
}

}  // namespace fairswap::harness
