// The scenario registry: named, self-describing experiment entry points
// (fig4, table1, free_riders, variance, ...) runnable from one driver
// binary (`fairswap_run <name> key=value...`) or from thin per-scenario
// alias binaries. A scenario is a plain function over a ScenarioContext;
// the registry owns name -> function dispatch and the shared CLI
// conventions (files/seed/out/threads/verbose) every bench used to
// re-implement by hand.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace fairswap::harness {

/// Everything a scenario body needs: the parsed CLI arguments, the shared
/// settings already extracted from them, and the output stream (stdout in
/// the binaries, a capture buffer in the equivalence tests).
struct ScenarioContext {
  /// All key=value arguments; scenario-specific keys (e.g. variance's
  /// `seeds`) are read from here.
  Config args;
  std::size_t files{10'000};
  std::uint64_t seed{kDefaultSeed};
  std::string out_dir{"bench_out"};
  /// Worker threads for scenarios that fan out (0 = hardware concurrency).
  std::size_t threads{0};
  std::ostream* out{nullptr};

  [[nodiscard]] std::ostream& os() const { return *out; }
};

/// A registered scenario. `default_files` seeds ScenarioContext::files
/// when the caller does not pass files= (the expensive paper-grid
/// scenarios default to 10k, the sweep-style ones lower). `extra_keys`
/// names the scenario-specific arguments beyond the shared set
/// (files/seed/out/threads/verbose) — anything else on the command line
/// is rejected, not silently ignored.
struct Scenario {
  std::string name;
  std::string description;
  std::size_t default_files{10'000};
  int (*run)(ScenarioContext&);
  std::vector<std::string> extra_keys;
};

/// Process-wide scenario table. Registration replaces an existing entry
/// with the same name; listing preserves registration order.
class ScenarioRegistry {
 public:
  [[nodiscard]] static ScenarioRegistry& instance();

  void add(Scenario scenario);
  [[nodiscard]] const Scenario* find(const std::string& name) const;
  [[nodiscard]] const std::vector<Scenario>& list() const noexcept {
    return scenarios_;
  }

 private:
  std::vector<Scenario> scenarios_;
};

/// Registers the migrated paper scenarios (fig4, table1, free_riders,
/// variance) and the strategic-agents scenarios (equilibrium, invasion).
/// Idempotent; called by the driver and the alias binaries (explicit
/// registration instead of static initializers, which a static library
/// would drop).
void register_builtin_scenarios();

/// The agents half of register_builtin_scenarios (harness/
/// agent_scenarios.cpp).
void register_agent_scenarios();

/// The flow-level half of register_builtin_scenarios (harness/
/// flow_scenarios.cpp): flow_fct.
void register_flow_scenarios();

/// The heavy-traffic half of register_builtin_scenarios (harness/
/// heavy_scenarios.cpp): heavy_traffic.
void register_heavy_scenarios();

/// Parses argv into a ScenarioContext (surfacing Config::last_error() as
/// a hard error, not a silent default) and runs the named scenario.
/// Returns the scenario's exit code, or 2 on unknown scenario / malformed
/// arguments.
int run_scenario(const std::string& name, int argc, char** argv,
                 std::ostream& out);

/// printf-style formatting into a stream — keeps the migrated scenarios
/// byte-identical to the printf-based mains they replaced.
void print(std::ostream& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// The shared "\n=== title ===\n" section header.
void banner(std::ostream& out, const std::string& title);

}  // namespace fairswap::harness
