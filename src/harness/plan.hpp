// Declarative experiment plans: a base ExperimentConfig plus sweep axes,
// expanded into a deterministic run list and executed through the
// TaskPool with seed-order folding.
//
// Expansion semantics:
//  * Axes expand like nested loops in declaration order — the last axis
//    varies fastest. `k={4,20} x originators={0.2,1.0}` yields the paper's
//    reporting order (k=4,20%), (k=4,100%), (k=20,20%), (k=20,100%).
//  * Axis values go through the same binding table as CLI args, so a bad
//    value fails expansion instead of silently running the default.
//  * Runs whose TopologyConfig compare equal share one built topology per
//    seed (generalizing run_paper_grid's per-k reuse): the originator
//    share, policy, caching etc. don't touch the overlay, so sweeping them
//    rebuilds nothing.
//
// Execution semantics:
//  * Each run executes once per seed {base.seed, ..., base.seed+seeds-1},
//    exactly like core::run_seeds.
//  * (topology-group x seed) cells fan out across the TaskPool; per-run
//    statistics are folded in seed order on the calling thread afterwards,
//    so the records are bit-identical for any thread count — every metric
//    except runtime_s, which reports measured wall clock.
//  * Folded records stream to the sinks in expansion order; only compact
//    scalars are retained per (run, seed), never per-node vectors.
#pragma once

#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "harness/sink.hpp"

namespace fairswap::harness {

/// One sweep dimension: a bound parameter key and the values it takes.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// A declarative experiment plan. Equal plans produce bit-identical
/// records for any thread count.
struct ExperimentPlan {
  std::string title{"sweep"};
  core::ExperimentConfig base{};
  std::vector<SweepAxis> axes;
  /// Seeds per run: {base.seed, base.seed+1, ...}.
  std::size_t seeds{1};
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads{1};
};

/// One expanded run: the fully-bound config, the axis assignment that
/// produced it, and its topology-sharing group.
struct PlannedRun {
  std::size_t index{0};
  core::ExperimentConfig config;
  std::vector<std::pair<std::string, std::string>> assignment;
  /// Runs with the same group id share one built topology per seed.
  std::size_t topology_group{0};
};

/// Expands a plan into its run list. Returns false and sets `error` on an
/// unknown axis key, malformed value, or invalid resulting config. Labels
/// default to the axis assignment ("k=4, originators=0.2") unless
/// base.label is set (single-run plans keep it verbatim).
[[nodiscard]] bool expand(const ExperimentPlan& plan,
                          std::vector<PlannedRun>& out, std::string& error);

/// The sink-facing description of a plan (axes, base snapshot, run count).
[[nodiscard]] PlanSummary summarize(const ExperimentPlan& plan,
                                    std::size_t run_count);

/// Expands and executes a plan, streaming one RunRecord per run to every
/// sink. Returns false (with `error`) on expansion failure; sinks then see
/// neither begin() nor records. `progress`, when set, receives one line as
/// the plan starts executing.
[[nodiscard]] bool run_plan(const ExperimentPlan& plan,
                            std::span<MetricSink* const> sinks,
                            std::string& error,
                            std::ostream* progress = nullptr);

/// Runs a list of fully-built configs single-seed with full results —
/// the scenario-facing sibling of run_plan for outputs that need per-node
/// series (histograms, Lorenz curves). Topology-equal neighbors share one
/// built topology, and each topology is released after its last user, so
/// a long grid never holds more than one overlay alive. `on_run` fires
/// before each run (progress printing); results come back in input order.
[[nodiscard]] std::vector<core::ExperimentResult> run_grid(
    std::span<const core::ExperimentConfig> configs,
    const std::function<void(const core::ExperimentConfig&)>& on_run = {});

}  // namespace fairswap::harness
