// The paper benches migrated onto the harness as registered scenarios.
// Each body is the old bench_*.cpp main, re-based onto ScenarioContext +
// run_grid (shared-topology grid execution) with byte-identical stdout and
// CSV output — pinned by tests/harness/scenario_equivalence_test.cpp. The
// bench_* binaries remain as thin aliases that dispatch here.
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/multi_run.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "harness/plan.hpp"
#include "harness/scenario.hpp"

namespace fairswap::harness {

namespace {

std::vector<const core::ExperimentResult*> as_ptrs(
    const std::vector<core::ExperimentResult>& results) {
  std::vector<const core::ExperimentResult*> ptrs;
  ptrs.reserve(results.size());
  for (const auto& r : results) ptrs.push_back(&r);
  return ptrs;
}

/// The paper's 2x2 grid through the shared-topology grid runner, with the
/// classic per-run progress line. Topologies are shared per k by the
/// run_grid grouping, exactly like the old bench_util::run_paper_grid.
std::vector<core::ExperimentResult> run_paper_grid(ScenarioContext& ctx) {
  return run_grid(core::paper_grid(ctx.files, ctx.seed),
                  [&](const core::ExperimentConfig& cfg) {
                    print(ctx.os(), "running %s (%zu files)...\n",
                          cfg.label.c_str(), cfg.files);
                    ctx.os().flush();
                  });
}

// --- fig4 ---------------------------------------------------------------
//
// Fig. 4 reproduction: "Distribution for the forwarded chunks for 10000
// file downloads. Left with 20% originators, on the right with 100%
// originators." Each panel overlays k=4 and k=20 histograms of per-node
// forwarded-chunk counts.
//
// Claims to reproduce:
//  * With k=20 the distribution is concentrated at a lower mode (the
//    paper: "with k=20, more than 400 out of 1000 nodes forward
//    approximately 10000 chunks").
//  * The area under the k=4 curve exceeds k=20: 1.6x on the 20% panel,
//    1.25x on the 100% panel (k=20 uses less bandwidth overall).
//  * With 20% originators, bandwidth use is more uneven, "with many peers
//    using twice the average bandwidth".
int scenario_fig4(ScenarioContext& ctx) {
  using namespace fairswap;

  banner(ctx.os(), "Fig. 4: per-node forwarded-chunk distribution");
  const auto results = run_paper_grid(ctx);
  const auto histos = core::served_histograms(as_ptrs(results), 40);

  // Panel layout mirrors the paper: left = 20% originators, right = 100%.
  std::ostringstream csv_text;
  CsvWriter csv(csv_text);
  csv.cells("label", "bin_left", "bin_right", "node_count");
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t b = 0; b < histos[i].bin_count(); ++b) {
      csv.cells(results[i].config.label, histos[i].bin_left(b),
                histos[i].bin_right(b), histos[i].count(b));
    }
  }
  core::write_text_file(ctx.out_dir + "/fig4_histogram.csv", csv_text.str());

  TextTable table({"configuration", "mean", "median", "p90", "max",
                   "nodes >= 2x mean"});
  for (const auto& r : results) {
    std::size_t heavy = 0;
    for (const auto v : r.served_per_node) {
      if (static_cast<double>(v) >= 2.0 * r.served_summary.mean) ++heavy;
    }
    table.add_row({r.config.label, TextTable::num(r.served_summary.mean, 0),
                   TextTable::num(r.served_summary.median, 0),
                   TextTable::num(r.served_summary.p90, 0),
                   TextTable::num(r.served_summary.max, 0),
                   std::to_string(heavy)});
  }
  print(ctx.os(), "%s", table.render().c_str());

  // Histogram-area comparison (the paper quotes area ratios because both
  // curves share bin widths; with equal widths the ratio reduces to the
  // ratio of total forwarded chunks).
  const double area_ratio_20 =
      static_cast<double>(results[0].totals.total_transmissions) /
      static_cast<double>(results[2].totals.total_transmissions);
  const double area_ratio_100 =
      static_cast<double>(results[1].totals.total_transmissions) /
      static_cast<double>(results[3].totals.total_transmissions);
  print(ctx.os(),
        "\nbandwidth area ratio k=4/k=20: %.2fx at 20%% originators "
        "(paper: ~1.6x), %.2fx at 100%% (paper: ~1.25x)\n",
        area_ratio_20, area_ratio_100);

  // Terminal rendering of the two k=20 panels' mode behaviour.
  for (const std::size_t idx : {std::size_t{2}, std::size_t{3}}) {
    print(ctx.os(), "\n%s histogram (40 bins):\n%s",
          results[idx].config.label.c_str(), histos[idx].render(40).c_str());
  }
  print(ctx.os(), "wrote %s/fig4_histogram.csv\n", ctx.out_dir.c_str());
  return 0;
}

// --- table1 -------------------------------------------------------------
//
// Table I reproduction: "Average forwarded chunks for the experiment with
// 10k downloads" — the 2x2 grid of bucket size k in {4, 20} and
// originator share in {20%, 100%}.
//
// Paper reference values:
//               20% originators   100% originators
//   k = 4            17253              16048
//   k = 20           11356              10904
//
// The shape to reproduce: k=20 transmits ~1.5x fewer chunks per node, and
// 100% originators slightly fewer than 20% ("more uniformly distributed
// originators result in fewer hops to the destination").
constexpr double kPaperTable1[2][2] = {{17253.0, 16048.0},   // k=4
                                       {11356.0, 10904.0}};  // k=20

int scenario_table1(ScenarioContext& ctx) {
  using namespace fairswap;

  banner(ctx.os(), "Table I: average forwarded chunks per node");
  const auto results = run_paper_grid(ctx);
  // results order: (k4,20%), (k4,100%), (k20,20%), (k20,100%).

  TextTable table({"configuration", "paper", "measured", "measured/paper"});
  std::ostringstream csv_text;
  CsvWriter csv(csv_text);
  csv.cells("k", "originator_share", "paper_avg_forwarded",
            "measured_avg_forwarded");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double paper = kPaperTable1[i / 2][i % 2];
    table.add_row({r.config.label, TextTable::num(paper, 0),
                   TextTable::num(r.avg_forwarded_chunks, 0),
                   TextTable::num(r.avg_forwarded_chunks / paper, 2)});
    csv.cells(r.config.topology.buckets.k,
              r.config.sim.workload.originator_share, paper,
              r.avg_forwarded_chunks);
  }
  print(ctx.os(), "%s", table.render().c_str());

  const double ratio_20 =
      results[0].avg_forwarded_chunks / results[2].avg_forwarded_chunks;
  const double ratio_100 =
      results[1].avg_forwarded_chunks / results[3].avg_forwarded_chunks;
  print(ctx.os(),
        "\nk=4 / k=20 transmission ratio: %.2fx at 20%% originators "
        "(paper: 1.52x), %.2fx at 100%% (paper: 1.47x)\n",
        ratio_20, ratio_100);

  core::write_text_file(ctx.out_dir + "/table1.csv", csv_text.str());
  print(ctx.os(), "wrote %s/table1.csv\n", ctx.out_dir.c_str());
  return 0;
}

// --- free_riders --------------------------------------------------------
//
// Extension: misbehaving peers (§V future-work thread 2).
//
// "For the duration of the experiment, it is assumed that all peers will
// adhere to the protocol ... In a second thread of future work, we will
// consider what happens when some peers misbehave. An interesting
// question arises here: What happens to F1 and F2 properties?"
//
// Model: a fraction of nodes free-ride — they originate downloads but
// never issue the zero-proximity payment (debt accrues and silently
// amortizes). We sweep the free-rider share and report exactly the
// question the paper poses: what happens to F1 and F2.
int scenario_free_riders(ScenarioContext& ctx) {
  using namespace fairswap;

  banner(ctx.os(), "Extension: free-riding originators vs F1/F2");

  TextTable table({"free-rider share", "Gini F2", "Gini F1 (income)",
                   "total income", "unsettled debt"});
  std::ostringstream csv_text;
  CsvWriter csv(csv_text);
  csv.cells("free_rider_share", "gini_f2", "gini_f1_income", "total_income",
            "outstanding_debt");

  const std::vector<double> shares{0.0, 0.1, 0.25, 0.5, 0.75};
  std::vector<core::ExperimentConfig> configs;
  for (const double share : shares) {
    auto cfg = core::paper_config(4, 1.0, ctx.files, ctx.seed);
    cfg.sim.free_rider_share = share;
    cfg.label = "riders=" + TextTable::num(share, 2);
    configs.push_back(std::move(cfg));
  }
  // One topology serves all five shares (the overlay does not depend on
  // who free-rides) — run_grid shares it where the old main rebuilt it
  // per run, bit-identically.
  const auto results =
      run_grid(configs, [&](const core::ExperimentConfig& cfg) {
        print(ctx.os(), "running %s...\n", cfg.label.c_str());
        ctx.os().flush();
      });

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.add_row({TextTable::num(shares[i], 2),
                   TextTable::num(result.fairness.gini_f2, 4),
                   TextTable::num(result.fairness.gini_f1_income, 4),
                   TextTable::num(result.total_income, 0),
                   TextTable::num(result.outstanding_debt, 0)});
    csv.cells(shares[i], result.fairness.gini_f2,
              result.fairness.gini_f1_income, result.total_income,
              result.outstanding_debt);
  }
  print(ctx.os(), "%s", table.render().c_str());
  print(ctx.os(),
        "\nreading: free riders shrink total income (fewer paid "
        "serves) and push work into unsettled debt. The income-based "
        "F1 degrades — nodes still forward chunks for free riders but "
        "are never paid for those serves — answering §V's open "
        "question. F2 worsens too: whether a node earns now depends "
        "on *which* originators route through it, not only on the "
        "bandwidth it offers.\n");
  core::write_text_file(ctx.out_dir + "/free_riders.csv", csv_text.str());
  print(ctx.os(), "wrote %s/free_riders.csv\n", ctx.out_dir.c_str());
  return 0;
}

// --- variance -----------------------------------------------------------
//
// Seed-variance analysis: the paper reports single-seed results ("random
// numbers are generated using the same seed"); this scenario re-runs the
// 2x2 grid across several seeds and reports every headline number as
// mean ± stddev, confirming the k=4 vs k=20 deltas are not seed noise.
int scenario_variance(ScenarioContext& ctx) {
  using namespace fairswap;

  const auto seeds = ctx.args.get_or("seeds", std::uint64_t{5});
  const std::string parse_error = ctx.args.last_error();
  if (!parse_error.empty()) {
    print(ctx.os(), "error: %s\n", parse_error.c_str());
    return 2;
  }

  banner(ctx.os(), "Seed variance across the paper grid (" +
                       std::to_string(seeds) + " seeds)");

  TextTable table({"configuration", "Gini F2", "Gini F1", "avg forwarded"});
  std::ostringstream csv_text;
  CsvWriter csv(csv_text);
  csv.cells("label", "gini_f2_mean", "gini_f2_sd", "gini_f1_mean",
            "gini_f1_sd", "avg_forwarded_mean", "avg_forwarded_sd");

  core::AggregateResult k4_20, k20_20;
  for (const std::size_t k : {std::size_t{4}, std::size_t{20}}) {
    for (const double share : {0.2, 1.0}) {
      auto cfg = core::paper_config(k, share, ctx.files, ctx.seed);
      print(ctx.os(), "running %s x %llu seeds...\n", cfg.label.c_str(),
            static_cast<unsigned long long>(seeds));
      ctx.os().flush();
      // Parallel fan-out over seeds; bit-identical to the serial fold for
      // any thread count (core/multi_run contract).
      const auto agg = core::run_seeds(cfg, seeds, ctx.threads);
      if (k == 4 && share == 0.2) k4_20 = agg;
      if (k == 20 && share == 0.2) k20_20 = agg;
      table.add_row({cfg.label, core::mean_pm_std(agg.gini_f2),
                     core::mean_pm_std(agg.gini_f1),
                     core::mean_pm_std(agg.avg_forwarded, 0)});
      csv.cells(cfg.label, agg.gini_f2.mean(), agg.gini_f2.stddev(),
                agg.gini_f1.mean(), agg.gini_f1.stddev(),
                agg.avg_forwarded.mean(), agg.avg_forwarded.stddev());
    }
  }
  print(ctx.os(), "%s", table.render().c_str());

  const double gap = k4_20.gini_f2.mean() - k20_20.gini_f2.mean();
  const double noise = k4_20.gini_f2.stddev() + k20_20.gini_f2.stddev();
  print(ctx.os(),
        "\nk=4 vs k=20 F2 gap at 20%% originators: %.4f, combined seed "
        "noise: %.4f -> the effect is %s seed noise.\n",
        gap, noise, gap > noise ? "well beyond" : "within");
  core::write_text_file(ctx.out_dir + "/variance.csv", csv_text.str());
  print(ctx.os(), "wrote %s/variance.csv\n", ctx.out_dir.c_str());
  return 0;
}

}  // namespace

void register_builtin_scenarios() {
  static const bool registered = [] {
    ScenarioRegistry& registry = ScenarioRegistry::instance();
    registry.add({"fig4",
                  "Fig. 4: per-node forwarded-chunk distribution (2x2 grid)",
                  10'000, &scenario_fig4, {}});
    registry.add({"table1",
                  "Table I: average forwarded chunks per node (2x2 grid)",
                  10'000, &scenario_table1, {}});
    registry.add({"free_riders",
                  "free-riding originator sweep vs F1/F2 (SV extension)",
                  2'000, &scenario_free_riders, {}});
    registry.add({"variance",
                  "multi-seed error bars for the paper grid (seeds=N)",
                  2'000, &scenario_variance, {"seeds"}});
    register_agent_scenarios();
    register_flow_scenarios();
    register_heavy_scenarios();
    return true;
  }();
  (void)registered;
}

}  // namespace fairswap::harness
