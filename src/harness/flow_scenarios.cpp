// The flow-level scenario: flow-completion-time percentiles across a
// link-capacity sweep on the paper's 1000-node grid, with the counter-based
// run as a built-in differential reference — the CLI face of
// tests/net/flow_equivalence_test.cpp's invariant.
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "harness/binding.hpp"
#include "harness/plan.hpp"
#include "harness/scenario.hpp"

namespace fairswap::harness {

namespace {

/// The counter-mode fields two runs must agree on exactly for the flow
/// layer to be a pure temporal overlay. Deliberately *not* totals ==
/// totals: the flow-level run carries nonzero FCT fields by design.
bool accounting_identical(const core::ExperimentResult& a,
                          const core::ExperimentResult& b) {
  const core::SimulationTotals& ta = a.totals;
  const core::SimulationTotals& tb = b.totals;
  return ta.files == tb.files && ta.chunk_requests == tb.chunk_requests &&
         ta.delivered == tb.delivered && ta.refused == tb.refused &&
         ta.failed_routes == tb.failed_routes &&
         ta.truncated_routes == tb.truncated_routes &&
         ta.local_hits == tb.local_hits &&
         ta.total_transmissions == tb.total_transmissions &&
         a.served_per_node == b.served_per_node &&
         a.income_per_node == b.income_per_node &&
         a.settlement_count == b.settlement_count &&
         a.outstanding_debt == b.outstanding_debt;
}

// --- flow_fct -----------------------------------------------------------
//
// "With flow_level=on, a 1000-node paper-grid run reports non-degenerate
// FCT percentiles (p50 < p99, at least one saturated link under
// link_capacity small enough to congest), while routes / chunk counts /
// ledger state match the counter-based reference exactly" (ISSUE 6).
int scenario_flow_fct(ScenarioContext& ctx) {
  using namespace fairswap;

  // One capacity per cell; link_capacity= collapses the sweep to a single
  // point, the other flow knobs apply to every cell.
  std::vector<double> capacities{0.01, 0.04, 0.16};
  if (ctx.args.has("link_capacity")) {
    capacities = {ctx.args.get_or("link_capacity", 0.04)};
  }
  const auto interarrival = ctx.args.get_or("flow_interarrival",
                                            std::uint64_t{200});
  const auto timeout = ctx.args.get_or("flow_timeout", std::uint64_t{50'000});
  const std::string parse_error = ctx.args.last_error();
  if (!parse_error.empty()) {
    print(ctx.os(), "error: %s\n", parse_error.c_str());
    return 2;
  }

  banner(ctx.os(), "Flow-level FCT: link-capacity sweep, paper grid k=4");

  // Cell 0 is the counter-based reference; every flow cell must reproduce
  // its accounting bit-for-bit.
  std::vector<core::ExperimentConfig> cells;
  auto base = core::paper_config(4, 1.0, ctx.files, ctx.seed);
  base.label = "counter reference";
  cells.push_back(base);
  const Binding* capacity_binding =
      BindingTable::instance().find("link_capacity");
  for (const double capacity : capacities) {
    auto cfg = base;
    cfg.sim.flow_level = true;
    cfg.sim.flow.link_capacity = capacity;
    cfg.sim.flow.interarrival = interarrival;
    cfg.sim.flow.timeout = timeout;
    // The binding's canonical double formatting keeps labels replayable
    // as key=value arguments.
    cfg.label = "link_capacity=" + capacity_binding->get(cfg);
    cells.push_back(cfg);
  }

  const auto results =
      run_grid(cells, [&](const core::ExperimentConfig& cfg) {
        print(ctx.os(), "running %s (%zu files)...\n", cfg.label.c_str(),
              cfg.files);
        ctx.os().flush();
      });

  TextTable table({"configuration", "fct p50", "fct p90", "fct p99",
                   "fct mean", "timed out", "saturated links", "max util",
                   "identical"});
  std::ostringstream csv_text;
  CsvWriter csv(csv_text);
  csv.cells("label", "link_capacity", "fct_p50", "fct_p90", "fct_p99",
            "fct_mean", "flows_started", "flows_completed", "flows_timed_out",
            "saturated_links", "max_link_utilization", "flow_makespan",
            "accounting_identical");

  bool all_identical = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    const bool identical = accounting_identical(results[0], r);
    all_identical = all_identical && identical;
    table.add_row({r.config.label, TextTable::num(r.totals.fct_p50, 0),
                   TextTable::num(r.totals.fct_p90, 0),
                   TextTable::num(r.totals.fct_p99, 0),
                   TextTable::num(r.totals.fct_mean, 1),
                   std::to_string(r.totals.flows_timed_out),
                   std::to_string(r.totals.saturated_links),
                   TextTable::num(r.totals.max_link_utilization, 3),
                   identical ? "yes" : "NO"});
    csv.cells(r.config.label, r.config.sim.flow.link_capacity,
              r.totals.fct_p50, r.totals.fct_p90, r.totals.fct_p99,
              r.totals.fct_mean, r.totals.flows_started,
              r.totals.flows_completed, r.totals.flows_timed_out,
              r.totals.saturated_links, r.totals.max_link_utilization,
              r.totals.flow_makespan, identical ? 1 : 0);
  }
  print(ctx.os(), "%s", table.render().c_str());
  print(ctx.os(),
        "\n'identical' = routes, chunk counts and SWAP ledger match the "
        "counter-based reference exactly; only the temporal outputs above "
        "are new.\n");
  core::write_text_file(ctx.out_dir + "/flow_fct.csv", csv_text.str());
  print(ctx.os(), "wrote %s/flow_fct.csv\n", ctx.out_dir.c_str());
  if (!all_identical) {
    print(ctx.os(), "ERROR: flow-level accounting diverged from the "
                    "counter-based reference\n");
    return 1;
  }
  return 0;
}

}  // namespace

void register_flow_scenarios() {
  ScenarioRegistry::instance().add(
      {"flow_fct",
       "flow-level FCT percentiles vs link capacity (+ differential check)",
       200, &scenario_flow_fct,
       {"link_capacity", "flow_interarrival", "flow_timeout"}});
}

}  // namespace fairswap::harness
