// MetricSink — the stream protocol between the experiment runner and its
// outputs. The runner announces the plan (begin), emits one compact
// RunRecord per expanded run as soon as it is folded (record), and closes
// (end). Records carry only aggregated scalars, never per-node vectors, so
// a 10k-node multi-seed sweep streams through sinks without ever buffering
// full ExperimentResults.
#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/telemetry/counters.hpp"

namespace fairswap::harness {

/// The sweep axes and fixed base parameters of a plan, as strings — what a
/// sink needs to label its output and nothing more.
struct PlanSummary {
  std::string title;
  /// Canonical key=value snapshot of the base config (binding-table order).
  std::vector<std::pair<std::string, std::string>> base;
  /// Axis keys in expansion order (last varies fastest) with their values.
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  std::size_t seeds{1};
  std::size_t threads{1};
  std::size_t run_count{0};
};

/// Per-run aggregates across seeds. One RunningStats per headline metric;
/// with a single seed the mean is the value and the stddev is 0.
struct MetricStats {
  RunningStats gini_f2;
  RunningStats gini_f1;
  RunningStats gini_f1_income;
  RunningStats avg_forwarded;
  RunningStats routing_success;
  RunningStats total_income;
  RunningStats outstanding_debt;
  RunningStats settlements;
  RunningStats total_transmissions;
  RunningStats delivered;
  RunningStats failed_routes;
  RunningStats truncated_routes;
  RunningStats cache_serves;
  RunningStats fct_p50;
  RunningStats fct_p99;
  RunningStats fct_mean;
  RunningStats flows_timed_out;
  RunningStats saturated_links;
  /// WALL PLANE — the one timing metric. Telemetry-enabled builds emit
  /// it through for_each_wall (a separate schema section excluded from
  /// the bit-identity contract); OFF builds keep it in for_each at its
  /// historical position so their output is byte-identical to pre-
  /// telemetry releases.
  RunningStats runtime_s;
  // Streaming-sketch percentiles (common/stream_stats); hops_* are 0
  // unless stream_metrics= is on.
  RunningStats hops_p50;
  RunningStats hops_p99;
  RunningStats served_p99;
  RunningStats income_p99;
  // Agents-aware sweep outputs (epochs= on the sweep path): final
  // free-rider prevalence and the convergence epoch (-1 when the epoch
  // game did not converge; both 0 on flat runs).
  RunningStats final_prevalence;
  RunningStats converged_epoch;

  /// Visits every SIM-PLANE metric as (name, stats), in the fixed schema
  /// order the CSV and JSON sinks emit. Adding a metric here adds it to
  /// every sink. New metrics are appended at the end so existing column
  /// prefixes stay stable for downstream readers.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    fn("gini_f2", gini_f2);
    fn("gini_f1", gini_f1);
    fn("gini_f1_income", gini_f1_income);
    fn("avg_forwarded", avg_forwarded);
    fn("routing_success", routing_success);
    fn("total_income", total_income);
    fn("outstanding_debt", outstanding_debt);
    fn("settlements", settlements);
    fn("total_transmissions", total_transmissions);
    fn("delivered", delivered);
    fn("failed_routes", failed_routes);
    fn("truncated_routes", truncated_routes);
    fn("cache_serves", cache_serves);
    fn("fct_p50", fct_p50);
    fn("fct_p99", fct_p99);
    fn("fct_mean", fct_mean);
    fn("flows_timed_out", flows_timed_out);
    fn("saturated_links", saturated_links);
    if constexpr (!telemetry::kEnabled) {
      // Historical mid-list position, kept only when the wall section
      // does not exist: FAIRSWAP_TELEMETRY=OFF output must stay
      // byte-identical to pre-telemetry releases.
      fn("runtime_s", runtime_s);
    }
    fn("hops_p50", hops_p50);
    fn("hops_p99", hops_p99);
    fn("served_p99", served_p99);
    fn("income_p99", income_p99);
    fn("final_prevalence", final_prevalence);
    fn("converged_epoch", converged_epoch);
  }

  /// Visits the WALL-PLANE metrics (telemetry-enabled builds only) —
  /// excluded from every bit-identity check; the sinks emit them in a
  /// section of their own so consumers can tell the planes apart.
  template <typename Fn>
  void for_each_wall(Fn&& fn) const {
    if constexpr (telemetry::kEnabled) {
      fn("runtime_s", runtime_s);
    } else {
      static_cast<void>(fn);
    }
  }
};

/// One expanded run's identity plus its folded metrics.
struct RunRecord {
  std::size_t index{0};
  std::string label;
  /// The axis assignment that produced this run, in axis order.
  std::vector<std::pair<std::string, std::string>> assignment;
  std::size_t seeds{1};
  MetricStats metrics;
  /// Sim-plane counter totals summed over the run's seeds — exact
  /// integers, bit-identical for any threads= (all zero and omitted from
  /// sink output in FAIRSWAP_TELEMETRY=OFF builds).
  telemetry::CounterBlock counters;
};

/// Receives a stream of run records. Implementations must not assume they
/// see records before end() (a failing plan may emit none).
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  virtual void begin(const PlanSummary& plan) { (void)plan; }
  virtual void record(const RunRecord& run) = 0;
  virtual void end() {}
};

/// Renders an aligned text table of the headline metrics (stdout-style
/// sink). Values print as "mean ± sd" for multi-seed runs.
class TableSink final : public MetricSink {
 public:
  explicit TableSink(std::ostream& out) : out_(&out) {}

  void begin(const PlanSummary& plan) override;
  void record(const RunRecord& run) override;
  void end() override;

 private:
  std::ostream* out_;
  std::optional<TextTable> table_;
};

/// Streams one CSV row per run: label, axis values, seed count, then
/// mean/sd for every metric. Header goes out at begin(), rows as runs
/// complete — nothing is buffered.
class CsvSink final : public MetricSink {
 public:
  explicit CsvSink(std::ostream& out) : writer_(out) {}

  void begin(const PlanSummary& plan) override;
  void record(const RunRecord& run) override;

 private:
  CsvWriter writer_;
};

/// Streams the general machine-readable roll-up, schema fairswap.run.v1:
/// {"schema":"fairswap.run.v1","title":...,"plan":{...},"runs":[...]}.
/// The plan header is written at begin(), each run object as it completes,
/// and the document is closed at end().
class JsonSink final : public MetricSink {
 public:
  explicit JsonSink(std::ostream& out) : json_(out) {}

  void begin(const PlanSummary& plan) override;
  void record(const RunRecord& run) override;
  void end() override;

 private:
  JsonWriter json_;
};

}  // namespace fairswap::harness
