#include "harness/binding.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>

namespace fairswap::harness {

namespace {

// Strict value parsers. Unlike Config::get_or these never fall back — a
// malformed sweep value must stop the run, not silently become a default.

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || !end || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::int64_t> parse_i64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || !end || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || !end || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (t == "1" || t == "true" || t == "yes" || t == "on") return true;
  if (t == "0" || t == "false" || t == "no" || t == "off") return false;
  return std::nullopt;
}

/// Shortest decimal rendering that round-trips the double exactly, so a
/// snapshot re-applied through the (strict) parser reproduces the config
/// bit-for-bit.
std::string format_double(double v) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string bad(const std::string& key, const std::string& value,
                const char* expected) {
  return key + ": '" + value + "' is not " + expected;
}

// Setter builders. Each returns "" on success and leaves the config
// untouched on failure. They are plain function templates so the Binding
// entries below stay one line per key.

using Cfg = core::ExperimentConfig;

std::string set_share(double& field, const std::string& key,
                      const std::string& v, bool allow_zero) {
  const auto parsed = parse_double(v);
  if (!parsed) return bad(key, v, "a number");
  if (*parsed < 0.0 || *parsed > 1.0 || (!allow_zero && *parsed == 0.0)) {
    return key + ": must be in " + (allow_zero ? "[0, 1]" : "(0, 1]");
  }
  field = *parsed;
  return {};
}

std::string set_token(Token& field, const std::string& key,
                      const std::string& v, bool allow_zero) {
  const auto parsed = parse_i64(v);
  if (!parsed) return bad(key, v, "an integer (token base units)");
  if (*parsed < 0 || (!allow_zero && *parsed == 0)) {
    return key + ": must be " + (allow_zero ? "non-negative" : "positive");
  }
  field = Token(*parsed);
  return {};
}

std::string set_bool(bool& field, const std::string& key,
                     const std::string& v) {
  const auto parsed = parse_bool(v);
  if (!parsed) return bad(key, v, "a boolean (true/false/1/0/yes/no/on/off)");
  field = *parsed;
  return {};
}

std::string set_name(std::string& field, const std::string& key,
                     const std::string& v,
                     std::initializer_list<const char*> allowed) {
  for (const char* a : allowed) {
    if (v == a) {
      field = v;
      return {};
    }
  }
  std::string msg = key + ": unknown value '" + v + "' (expected one of";
  for (const char* a : allowed) msg += std::string(" ") + a;
  return msg + ")";
}

}  // namespace

BindingTable::BindingTable() {
  // One entry per knob, kept in rough config-struct order so a snapshot
  // reads like an ExperimentConfig literal. Setters are captureless
  // lambdas so Binding stays a plain function-pointer struct.
  const auto add = [this](const char* key, const char* description,
                          std::string (*set)(Cfg&, const std::string&),
                          std::string (*get)(const Cfg&)) {
    bindings_.push_back(Binding{key, description, set, get});
  };

  add("label", "run label shown in tables and sinks",
      +[](Cfg& c, const std::string& v) -> std::string {
        c.label = v;
        return {};
      },
      +[](const Cfg& c) { return c.label; });

  add("nodes", "overlay node count (>= 2)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("nodes", v, "a node count");
        if (*p < 2) return "nodes: must be at least 2";
        c.topology.node_count = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.topology.node_count); });

  add("bits", "address-space width in bits (1..30)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("bits", v, "a bit width");
        if (*p < 1 || *p > 30) return "bits: must be in [1, 30]";
        c.topology.address_bits = static_cast<int>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.topology.address_bits); });

  add("k", "routing-table bucket capacity (the paper's k)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("k", v, "a bucket capacity");
        if (*p < 1) return "k: must be at least 1";
        c.topology.buckets.k = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.topology.buckets.k); });

  add("k_bucket0", "bucket-0-only capacity override (0 = none)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("k_bucket0", v, "a bucket capacity");
        c.topology.buckets.k_bucket0 = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) {
        return std::to_string(c.topology.buckets.k_bucket0);
      });

  add("neighborhood_connect", "also connect full Swarm neighborhoods",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.topology.neighborhood_connect,
                        "neighborhood_connect", v);
      },
      +[](const Cfg& c) {
        return std::string(c.topology.neighborhood_connect ? "true" : "false");
      });

  add("files", "file transfers to simulate",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("files", v, "a file count");
        c.files = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.files); });

  add("seed", "root RNG seed",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("seed", v, "an unsigned integer");
        c.seed = *p;
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.seed); });

  add("lorenz_points", "Lorenz curve resolution (0 = per node)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("lorenz_points", v, "a point count");
        c.lorenz_points = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.lorenz_points); });

  add("originators", "share of nodes eligible to originate, (0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.sim.workload.originator_share, "originators", v,
                         /*allow_zero=*/false);
      },
      +[](const Cfg& c) {
        return format_double(c.sim.workload.originator_share);
      });

  add("min_chunks", "minimum chunks per file",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("min_chunks", v, "a chunk count");
        if (*p < 1) return "min_chunks: must be at least 1";
        c.sim.workload.min_chunks_per_file = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.workload.min_chunks_per_file);
      });

  add("max_chunks", "maximum chunks per file",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("max_chunks", v, "a chunk count");
        if (*p < 1) return "max_chunks: must be at least 1";
        c.sim.workload.max_chunks_per_file = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.workload.max_chunks_per_file);
      });

  add("upload_share", "share of transfers that are uploads, [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.sim.workload.upload_share, "upload_share", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.sim.workload.upload_share); });

  add("zipf", "Zipf exponent over originators (0 = uniform)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("zipf", v, "a number");
        if (*p < 0.0) return "zipf: must be non-negative";
        c.sim.workload.originator_zipf_alpha = *p;
        return {};
      },
      +[](const Cfg& c) {
        return format_double(c.sim.workload.originator_zipf_alpha);
      });

  add("catalog", "fixed content-catalog size (0 = fresh uniform chunks)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("catalog", v, "a catalog size");
        c.sim.workload.catalog_size = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.workload.catalog_size);
      });

  add("catalog_zipf", "Zipf exponent over the catalog",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("catalog_zipf", v, "a number");
        if (*p < 0.0) return "catalog_zipf: must be non-negative";
        c.sim.workload.catalog_zipf_alpha = *p;
        return {};
      },
      +[](const Cfg& c) {
        return format_double(c.sim.workload.catalog_zipf_alpha);
      });

  // --- heavy-traffic demand processes (src/workload/engine) --------------

  add("demand", "demand process: uniform | zipf (catalog popularity)",
      +[](Cfg& c, const std::string& v) -> std::string {
        if (v != "uniform" && v != "zipf") {
          return "demand: unknown value '" + v +
                 "' (expected one of uniform zipf)";
        }
        c.sim.demand.kind = workload::parse_demand_kind(v);
        return {};
      },
      +[](const Cfg& c) {
        return workload::demand_kind_name(c.sim.demand.kind);
      });

  add("zipf_s", "Zipf exponent over catalog ranks (demand=zipf)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("zipf_s", v, "a number");
        if (*p < 0.0) return "zipf_s: must be non-negative";
        c.sim.demand.zipf_s = *p;
        return {};
      },
      +[](const Cfg& c) { return format_double(c.sim.demand.zipf_s); });

  add("burst_start", "request index opening the flash-crowd window",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("burst_start", v, "a request index");
        c.sim.demand.burst_start = *p;
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.demand.burst_start); });

  add("burst_files", "flash-crowd window length in requests (0 = off)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("burst_files", v, "a request count");
        c.sim.demand.burst_files = *p;
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.demand.burst_files); });

  add("burst_share", "probability a window request hits the hot file, [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.sim.demand.burst_share, "burst_share", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.sim.demand.burst_share); });

  add("diurnal_period", "diurnal cycle length in requests (0 = off)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("diurnal_period", v, "a number");
        if (*p < 0.0) return "diurnal_period: must be non-negative";
        c.sim.demand.diurnal_period = *p;
        return {};
      },
      +[](const Cfg& c) { return format_double(c.sim.demand.diurnal_period); });

  add("diurnal_amp", "interarrival swing around the mean, [0, 1)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("diurnal_amp", v, "a number");
        if (*p < 0.0 || *p >= 1.0) return "diurnal_amp: must be in [0, 1)";
        c.sim.demand.diurnal_amp = *p;
        return {};
      },
      +[](const Cfg& c) { return format_double(c.sim.demand.diurnal_amp); });

  add("upload_mix", "alias of upload_share (demand-engine vocabulary)",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.sim.workload.upload_share, "upload_mix", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.sim.workload.upload_share); });

  add("stream_metrics",
      "maintain bounded-memory streaming aggregates (hop/file sketches)",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.stream_metrics, "stream_metrics", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.stream_metrics ? "true" : "false");
      });

  add("pricer", "chunk pricer: xor-distance | proximity | flat",
      +[](Cfg& c, const std::string& v) {
        return set_name(c.sim.pricer, "pricer", v,
                        {"xor-distance", "proximity", "flat"});
      },
      +[](const Cfg& c) { return c.sim.pricer; });

  add("policy",
      "payment policy: zero-proximity | per-hop-swap | tit-for-tat | "
      "effort-based | none",
      +[](Cfg& c, const std::string& v) {
        return set_name(c.sim.policy, "policy", v,
                        {"zero-proximity", "per-hop-swap", "tit-for-tat",
                         "effort-based", "none"});
      },
      +[](const Cfg& c) { return c.sim.policy; });

  add("cache", "per-node LRU cache capacity in chunks (0 = off)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("cache", v, "a chunk count");
        c.sim.cache_capacity = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.cache_capacity); });

  add("free_riders", "share of nodes that never pay, [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.sim.free_rider_share, "free_riders", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.sim.free_rider_share); });

  add("amortize_each_step", "apply one amortization tick per file",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.amortize_each_step, "amortize_each_step", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.amortize_each_step ? "true" : "false");
      });

  add("amortization", "base units forgiven per pair per tick",
      +[](Cfg& c, const std::string& v) {
        return set_token(c.sim.swap.amortization_per_tick, "amortization", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.swap.amortization_per_tick.base_units());
      });

  add("payment_threshold", "SWAP payment threshold in base units",
      +[](Cfg& c, const std::string& v) {
        return set_token(c.sim.swap.payment_threshold, "payment_threshold", v,
                         /*allow_zero=*/false);
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.swap.payment_threshold.base_units());
      });

  add("disconnect_threshold", "SWAP disconnect threshold in base units",
      +[](Cfg& c, const std::string& v) {
        return set_token(c.sim.swap.disconnect_threshold,
                         "disconnect_threshold", v, /*allow_zero=*/false);
      },
      +[](const Cfg& c) {
        return std::to_string(c.sim.swap.disconnect_threshold.base_units());
      });

  add("compiled_routing", "route via the compiled NodeIndex hot path",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.compiled_routing, "compiled_routing", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.compiled_routing ? "true" : "false");
      });

  add("compiled_ledger", "keep SWAP balances in the edge-arena ledger",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.compiled_ledger, "compiled_ledger", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.compiled_ledger ? "true" : "false");
      });

  add("max_hops", "route hop cap (0 = default 4x address bits)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("max_hops", v, "a hop count");
        c.sim.max_route_hops = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.max_route_hops); });

  // --- flow-level bandwidth simulation (src/net/flow_sim) ----------------

  add("flow_level", "simulate transfers as max-min fair flows over links",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.flow_level, "flow_level", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.flow_level ? "true" : "false");
      });

  add("link_capacity", "per-edge link capacity in chunks per tick (> 0)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("link_capacity", v, "a number");
        if (!(*p > 0.0)) return "link_capacity: must be positive";
        c.sim.flow.link_capacity = *p;
        return {};
      },
      +[](const Cfg& c) { return format_double(c.sim.flow.link_capacity); });

  add("flow_interarrival", "ticks between file arrivals (>= 1)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("flow_interarrival", v, "a tick count");
        if (*p < 1) return "flow_interarrival: must be at least 1";
        c.sim.flow.interarrival = *p;
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.flow.interarrival); });

  add("flow_timeout", "ticks before an unfinished flow is abandoned (0 = off)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("flow_timeout", v, "a tick count");
        c.sim.flow.timeout = *p;
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.sim.flow.timeout); });

  add("bounded_fct", "record FCTs in a bounded-memory percentile sketch",
      +[](Cfg& c, const std::string& v) {
        return set_bool(c.sim.flow.bounded_fct, "bounded_fct", v);
      },
      +[](const Cfg& c) {
        return std::string(c.sim.flow.bounded_fct ? "true" : "false");
      });

  // --- strategic-agents epoch game (src/agents) --------------------------

  add("epochs", "strategy-revision epochs (0 = no epoch game)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("epochs", v, "an epoch count");
        c.agents.epochs = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.agents.epochs); });

  add("files_per_epoch", "file transfers simulated per epoch",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_u64(v);
        if (!p) return bad("files_per_epoch", v, "a file count");
        if (*p < 1) return "files_per_epoch: must be at least 1";
        c.agents.files_per_epoch = static_cast<std::size_t>(*p);
        return {};
      },
      +[](const Cfg& c) { return std::to_string(c.agents.files_per_epoch); });

  add("dynamics", "strategy-revision dynamics: imitate | best-response",
      +[](Cfg& c, const std::string& v) {
        return set_name(c.agents.dynamics, "dynamics", v,
                        {"imitate", "best-response"});
      },
      +[](const Cfg& c) { return c.agents.dynamics; });

  add("revision_rate", "share of nodes revising per epoch, [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.agents.revision_rate, "revision_rate", v,
                         /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.agents.revision_rate); });

  add("noise", "epsilon-noise per revision (random strategy), [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.agents.noise, "noise", v, /*allow_zero=*/true);
      },
      +[](const Cfg& c) { return format_double(c.agents.noise); });

  add("bandwidth_cost", "cost per chunk served, token base units (>= 0)",
      +[](Cfg& c, const std::string& v) -> std::string {
        const auto p = parse_double(v);
        if (!p) return bad("bandwidth_cost", v, "a number");
        if (*p < 0.0) return "bandwidth_cost: must be non-negative";
        c.agents.bandwidth_cost = *p;
        return {};
      },
      +[](const Cfg& c) { return format_double(c.agents.bandwidth_cost); });

  add("initial_free_riders", "share of nodes starting as FREE_RIDE, [0, 1]",
      +[](Cfg& c, const std::string& v) {
        return set_share(c.agents.initial_free_riders, "initial_free_riders",
                         v, /*allow_zero=*/true);
      },
      +[](const Cfg& c) {
        return format_double(c.agents.initial_free_riders);
      });

  // --- workload traces (src/workload/trace) ------------------------------

  add("trace_out", "record the generated workload to this CSV path",
      +[](Cfg& c, const std::string& v) -> std::string {
        c.trace_out = v;
        return {};
      },
      +[](const Cfg& c) { return c.trace_out; });

  add("trace_in", "replay the workload trace at this CSV path",
      +[](Cfg& c, const std::string& v) -> std::string {
        c.trace_in = v;
        return {};
      },
      +[](const Cfg& c) { return c.trace_in; });

  // Mark the workload-generation keys (see Binding::workload_generation).
  // The diurnal keys are deliberately absent: they modulate flow *timing*
  // only, never the request stream, so they stay sweepable under replay.
  for (const char* key : {"files", "originators", "min_chunks", "max_chunks",
                          "upload_share", "zipf", "catalog", "catalog_zipf",
                          "demand", "zipf_s", "burst_start", "burst_files",
                          "burst_share", "upload_mix"}) {
    for (Binding& binding : bindings_) {
      if (binding.key == key) binding.workload_generation = true;
    }
  }
}

const BindingTable& BindingTable::instance() {
  static const BindingTable table;
  return table;
}

const Binding* BindingTable::find(const std::string& key) const {
  for (const Binding& b : bindings_) {
    if (b.key == key) return &b;
  }
  return nullptr;
}

std::string BindingTable::apply(core::ExperimentConfig& cfg,
                                const std::string& key,
                                const std::string& value) const {
  const Binding* binding = find(key);
  if (!binding) return "unknown parameter '" + key + "'";
  return binding->set(cfg, value);
}

std::vector<std::string> BindingTable::apply_all(
    core::ExperimentConfig& cfg, const Config& args,
    std::span<const std::string> reserved) const {
  std::vector<std::string> errors;
  for (const auto& [key, value] : args.entries()) {
    if (std::find(reserved.begin(), reserved.end(), key) != reserved.end()) {
      continue;
    }
    std::string err = apply(cfg, key, value);
    if (!err.empty()) errors.push_back(std::move(err));
  }
  return errors;
}

std::vector<std::pair<std::string, std::string>> BindingTable::snapshot(
    const core::ExperimentConfig& cfg) const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(bindings_.size());
  for (const Binding& b : bindings_) {
    out.emplace_back(b.key, b.get(cfg));
  }
  return out;
}

std::string validate(const core::ExperimentConfig& cfg) {
  if (cfg.topology.address_bits < 64 &&
      cfg.topology.node_count >
          (std::uint64_t{1} << cfg.topology.address_bits)) {
    return "nodes: " + std::to_string(cfg.topology.node_count) +
           " nodes do not fit a " + std::to_string(cfg.topology.address_bits) +
           "-bit address space";
  }
  if (cfg.sim.workload.min_chunks_per_file >
      cfg.sim.workload.max_chunks_per_file) {
    return "min_chunks: must not exceed max_chunks";
  }
  if (cfg.sim.swap.payment_threshold > cfg.sim.swap.disconnect_threshold) {
    return "payment_threshold: must not exceed disconnect_threshold";
  }
  if (!cfg.trace_in.empty() && !cfg.trace_out.empty()) {
    return "trace_in: cannot record and replay in the same run (drop "
           "trace_out)";
  }
  if (cfg.sim.demand.diurnal_amp > 0.0 &&
      cfg.sim.demand.diurnal_period <= 0.0) {
    return "diurnal_amp: requires diurnal_period > 0";
  }
  if (cfg.sim.demand.kind == workload::DemandConfig::Kind::kZipf &&
      cfg.sim.demand.catalog == 0 && cfg.sim.workload.catalog_size == 0) {
    return "demand: zipf demand needs a catalog (set catalog=)";
  }
  return {};
}

}  // namespace fairswap::harness
