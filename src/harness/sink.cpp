#include "harness/sink.hpp"

#include "core/multi_run.hpp"

namespace fairswap::harness {

namespace {

/// Table cells show "mean ± sd" only when there is seed spread to report.
std::string cell(const RunningStats& stats, std::size_t seeds, int precision) {
  if (seeds > 1) return core::mean_pm_std(stats, precision);
  return TextTable::num(stats.mean(), precision);
}

}  // namespace

void TableSink::begin(const PlanSummary& plan) {
  (void)plan;
  std::vector<std::string> header{"run",           "Gini F2",
                                  "Gini F1",       "avg forwarded",
                                  "routing success", "total income"};
  if constexpr (telemetry::kEnabled) {
    // Headline sim-plane counter (docs/OBSERVABILITY.md): payments made.
    header.emplace_back("debits");
  }
  table_.emplace(std::move(header));
}

void TableSink::record(const RunRecord& run) {
  std::vector<std::string> row{run.label,
                               cell(run.metrics.gini_f2, run.seeds, 4),
                               cell(run.metrics.gini_f1, run.seeds, 4),
                               cell(run.metrics.avg_forwarded, run.seeds, 0),
                               cell(run.metrics.routing_success, run.seeds, 4),
                               cell(run.metrics.total_income, run.seeds, 0)};
  if constexpr (telemetry::kEnabled) {
    row.push_back(
        std::to_string(run.counters.value(telemetry::Counter::kDebits)));
  }
  table_->add_row(std::move(row));
}

void TableSink::end() {
  *out_ << table_->render();
  out_->flush();
}

void CsvSink::begin(const PlanSummary& plan) {
  std::vector<std::string> header{"label"};
  for (const auto& [key, values] : plan.axes) header.push_back(key);
  header.emplace_back("seeds");
  MetricStats{}.for_each([&](const char* name, const RunningStats&) {
    header.push_back(std::string(name) + "_mean");
    header.push_back(std::string(name) + "_sd");
  });
  // Counter columns are exact integer sums over seeds (no mean/sd), then
  // the wall-plane section last — the sim-plane prefix stays stable.
  if constexpr (telemetry::kEnabled) {
    telemetry::CounterBlock{}.for_each(
        [&](std::string_view name, std::uint64_t) {
          header.emplace_back(name);
        });
  }
  MetricStats{}.for_each_wall([&](const char* name, const RunningStats&) {
    header.push_back(std::string(name) + "_mean");
    header.push_back(std::string(name) + "_sd");
  });
  writer_.row(header);
}

void CsvSink::record(const RunRecord& run) {
  std::vector<std::string> row{run.label};
  for (const auto& [key, value] : run.assignment) {
    (void)key;
    row.push_back(value);
  }
  row.push_back(std::to_string(run.seeds));
  run.metrics.for_each([&](const char*, const RunningStats& stats) {
    row.push_back(std::to_string(stats.mean()));
    row.push_back(std::to_string(stats.stddev()));
  });
  if constexpr (telemetry::kEnabled) {
    run.counters.for_each([&](std::string_view, std::uint64_t value) {
      row.push_back(std::to_string(value));
    });
  }
  run.metrics.for_each_wall([&](const char*, const RunningStats& stats) {
    row.push_back(std::to_string(stats.mean()));
    row.push_back(std::to_string(stats.stddev()));
  });
  writer_.row(row);
}

void JsonSink::begin(const PlanSummary& plan) {
  json_.open();
  json_.field("schema", "fairswap.run.v1");
  json_.field("title", plan.title);
  json_.open("plan");
  json_.field("seeds", plan.seeds);
  json_.field("threads", plan.threads);
  json_.field("run_count", plan.run_count);
  json_.open_list("axes");
  for (const auto& [key, values] : plan.axes) {
    json_.open();
    json_.field("key", key);
    json_.open_list("values");
    for (const std::string& v : values) json_.element(v);
    json_.close_list();
    json_.close();
  }
  json_.close_list();
  json_.open("base");
  for (const auto& [key, value] : plan.base) json_.field(key.c_str(), value);
  json_.close();
  json_.close();
  json_.open_list("runs");
}

void JsonSink::record(const RunRecord& run) {
  json_.open();
  json_.field("label", run.label);
  json_.open("assignment");
  for (const auto& [key, value] : run.assignment) {
    json_.field(key.c_str(), value);
  }
  json_.close();
  json_.field("seeds", run.seeds);
  json_.open("metrics");
  run.metrics.for_each([&](const char* name, const RunningStats& stats) {
    json_.open(name);
    json_.field("mean", stats.mean());
    json_.field("stddev", stats.stddev());
    json_.field("min", stats.min());
    json_.field("max", stats.max());
    json_.close();
  });
  json_.close();
  if constexpr (telemetry::kEnabled) {
    // Sim plane: exact integer totals over seeds (part of the
    // bit-identity contract). Wall plane: timings, explicitly not.
    json_.open("counters");
    run.counters.for_each([&](std::string_view name, std::uint64_t value) {
      json_.field(std::string(name).c_str(), value);
    });
    json_.close();
    json_.open("wall");
    run.metrics.for_each_wall([&](const char* name,
                                  const RunningStats& stats) {
      json_.open(name);
      json_.field("mean", stats.mean());
      json_.field("stddev", stats.stddev());
      json_.field("min", stats.min());
      json_.field("max", stats.max());
      json_.close();
    });
    json_.close();
  }
  json_.close();
}

void JsonSink::end() {
  json_.close_list();
  json_.close();
}

}  // namespace fairswap::harness
