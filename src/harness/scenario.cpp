#include "harness/scenario.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "common/log.hpp"

namespace fairswap::harness {

ScenarioRegistry& ScenarioRegistry::instance() {
  // fairswap-lint: allow(mutable-global) -- the scenario registry is
  // populated once by static registrars before main() and read-only
  // afterwards; it holds code (run functions), never simulation state.
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  for (Scenario& existing : scenarios_) {
    if (existing.name == scenario.name) {
      existing = std::move(scenario);
      return;
    }
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int run_scenario(const std::string& name, int argc, char** argv,
                 std::ostream& out) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::instance().find(name);
  if (!scenario) {
    out << "error: unknown scenario '" << name << "'. Registered scenarios:\n";
    for (const Scenario& s : ScenarioRegistry::instance().list()) {
      out << "  " << s.name << " - " << s.description << "\n";
    }
    return 2;
  }

  ScenarioContext ctx;
  ctx.args = Config::from_args(argc, argv);

  // Unknown keys are errors, not silent no-ops: a typo'd files= must not
  // quietly run the full-scale default.
  static const char* kSharedKeys[] = {"files", "seed", "out", "threads",
                                      "verbose"};
  for (const auto& [key, value] : ctx.args.entries()) {
    bool known = false;
    for (const char* shared : kSharedKeys) known = known || key == shared;
    for (const std::string& extra : scenario->extra_keys) {
      known = known || key == extra;
    }
    if (!known) {
      out << "error: unknown argument '" << key << "' for scenario '"
          << scenario->name << "' (accepted:";
      for (const char* shared : kSharedKeys) out << " " << shared;
      for (const std::string& extra : scenario->extra_keys) out << " " << extra;
      out << ")\n";
      return 2;
    }
  }

  ctx.files = ctx.args.get_or(
      "files", static_cast<std::uint64_t>(scenario->default_files));
  ctx.seed = ctx.args.get_or("seed", kDefaultSeed);
  ctx.out_dir = ctx.args.get_or("out", std::string{"bench_out"});
  ctx.threads =
      static_cast<std::size_t>(ctx.args.get_or("threads", std::uint64_t{0}));
  if (ctx.args.get_or("verbose", false)) Log::set_level(LogLevel::kInfo);
  ctx.out = &out;

  // The typed getters above fall back on malformed values; surface the
  // report instead of silently running a default-sized experiment.
  const std::string parse_error = ctx.args.last_error();
  if (!parse_error.empty()) {
    out << "error: " << parse_error << "\n";
    return 2;
  }

  return scenario->run(ctx);
}

void print(std::ostream& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed >= 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.write(buf.data(), needed);
  }
  va_end(args);
}

void banner(std::ostream& out, const std::string& title) {
  print(out, "\n=== %s ===\n", title.c_str());
}

}  // namespace fairswap::harness
