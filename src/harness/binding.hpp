// The parameter-binding table: one validated path from string key=value
// pairs (CLI args, sweep axes, config files) to ExperimentConfig fields.
//
// Every bench used to hand-roll its own Config::get_or calls, which meant
// a typo'd key was a silent no-op and every binary invented its own key
// names. Here each key is declared once with a typed, range-checked setter
// and a canonical getter; unknown keys and malformed or out-of-range
// values are errors the caller must surface.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"

namespace fairswap::harness {

/// One bound key. `set` applies a string value (returns an error message,
/// empty on success, and leaves the config untouched on failure); `get`
/// renders the field's current value in the same format `set` accepts.
struct Binding {
  std::string key;
  std::string description;
  std::string (*set)(core::ExperimentConfig&, const std::string&);
  std::string (*get)(const core::ExperimentConfig&);
  /// True for keys that only shape workload *generation* (files,
  /// originators, chunk ranges, ...). A replayed trace ignores them, so
  /// the sweep expansion rejects such keys as axes next to trace_in —
  /// deriving that guard from the table keeps future generator knobs
  /// covered by construction.
  bool workload_generation{false};
};

/// The registry of every bindable experiment parameter.
class BindingTable {
 public:
  /// The canonical table covering every ExperimentConfig knob the benches
  /// and scenarios use (nodes, bits, k, files, originators, free_riders,
  /// caching, compiled_routing, compiled_ledger, seed, ...).
  [[nodiscard]] static const BindingTable& instance();

  [[nodiscard]] const std::vector<Binding>& bindings() const noexcept {
    return bindings_;
  }

  [[nodiscard]] const Binding* find(const std::string& key) const;

  /// Applies one key=value; returns an error message ("" on success).
  /// Unknown keys are errors, not silent no-ops.
  [[nodiscard]] std::string apply(core::ExperimentConfig& cfg,
                                  const std::string& key,
                                  const std::string& value) const;

  /// Applies every entry of `args` except the keys listed in `reserved`
  /// (CLI control keys like out/seeds/threads that are not experiment
  /// parameters). Returns all errors; the config reflects the keys that
  /// applied cleanly.
  [[nodiscard]] std::vector<std::string> apply_all(
      core::ExperimentConfig& cfg, const Config& args,
      std::span<const std::string> reserved = {}) const;

  /// The full key=value snapshot of a config, one pair per binding in
  /// table order. apply()ing a snapshot onto a default config reproduces
  /// the config (the round-trip property the binding tests pin down).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> snapshot(
      const core::ExperimentConfig& cfg) const;

 private:
  BindingTable();

  std::vector<Binding> bindings_;
};

/// Cross-field validation a per-key setter cannot do (node count vs
/// address-space size, chunk range ordering, SWAP threshold ordering).
/// Returns an error message, empty when the config is coherent.
[[nodiscard]] std::string validate(const core::ExperimentConfig& cfg);

}  // namespace fairswap::harness
