// The strategic-agents scenarios: epoch-based behavior evolution driven
// through the harness (src/agents).
//
//  * equilibrium — one population, half sharers half free riders, imitate
//    dynamics under the paper's SWAP incentives: where does the sharing
//    level settle, and what do F1/F2 look like at the fixed point?
//  * invasion — the incentive-compatibility experiment: a small
//    FREE_RIDE invasion into an all-SHARE population, run twice over one
//    topology — once with payments enabled (the invasion must be
//    repelled: prevalence back to ~0) and once with the payment policy
//    ablated to "none" (free-riding must spread to fixation). This is
//    the §V "what happens when peers misbehave" question asked
//    dynamically, in the spirit of Shelby's rational-deviation analysis.
#include <span>
#include <sstream>
#include <vector>

#include "agents/epoch.hpp"
#include "agents/series.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "harness/binding.hpp"
#include "harness/scenario.hpp"

namespace fairswap::harness {

namespace {

/// Keys the agents scenarios accept beyond the shared set. Everything is
/// a regular binding, so overrides run through the same strict table as
/// sweeps.
const std::vector<std::string> kAgentKeys = {
    "nodes",         "bits",          "k",
    "originators",   "min_chunks",    "max_chunks",
    "policy",        "pricer",        "cache",
    "payment_threshold",  "disconnect_threshold",
    "epochs",        "files_per_epoch",   "dynamics",
    "revision_rate", "noise",             "bandwidth_cost",
    "initial_free_riders"};

/// Bandwidth cost (token base units per chunk served) used when the
/// caller does not override bandwidth_cost=. Calibrated against the
/// paper's 1000-node, 16-bit, xor-distance-priced grid: marginal SWAP
/// income per served chunk averages ~1.5e3 base units, with the 10th
/// percentile node (mostly-relay duty, rarely the paid first hop) at
/// ~2.7e2. A cost of 100 sits below even that tail, so sharing is
/// profitable for nearly every node with payments on — and strictly
/// loss-making for anyone serving at all once payments are ablated.
constexpr double kDefaultBandwidthCost = 100.0;

/// Shared scenario plumbing: the base config with the agents defaults,
/// plus the strict application of every CLI override.
bool agents_config(ScenarioContext& ctx, const char* label,
                   core::ExperimentConfig& cfg) {
  if (ctx.args.has("files")) {
    print(ctx.os(),
          "error: agents scenarios run epochs x files_per_epoch; use "
          "files_per_epoch=, not files=\n");
    return false;
  }
  cfg = core::paper_config(4, 1.0, /*files=*/0, ctx.seed);
  cfg.label = label;
  cfg.agents.epochs = 40;
  cfg.agents.files_per_epoch = 200;
  cfg.agents.revision_rate = 0.25;
  cfg.agents.bandwidth_cost = kDefaultBandwidthCost;

  static const std::vector<std::string> reserved = {"files", "seed", "out",
                                                    "threads", "verbose"};
  const auto errors =
      BindingTable::instance().apply_all(cfg, ctx.args, reserved);
  for (const std::string& err : errors) {
    print(ctx.os(), "error: %s\n", err.c_str());
  }
  if (!errors.empty()) return false;
  const std::string invalid = validate(cfg);
  if (!invalid.empty()) {
    print(ctx.os(), "error: %s\n", invalid.c_str());
    return false;
  }
  return true;
}

void print_series(ScenarioContext& ctx, const agents::EpochSeries& series) {
  TextTable table({"epoch", "free riders", "prevalence", "u(share)",
                   "u(free-ride)", "welfare", "Gini F2", "Gini F1"});
  for (const auto& p : series.points) {
    table.add_row({std::to_string(p.epoch), std::to_string(p.free_riders),
                   TextTable::num(p.prevalence, 3),
                   TextTable::num(p.share_utility, 0),
                   TextTable::num(p.free_ride_utility, 0),
                   TextTable::num(p.total_welfare, 0),
                   TextTable::num(p.gini_f2, 4),
                   TextTable::num(p.gini_f1_income, 4)});
  }
  print(ctx.os(), "%s", table.render().c_str());
  if (series.converged) {
    print(ctx.os(), "converged at epoch %zu (final prevalence %.3f)\n",
          series.converged_epoch, series.final_prevalence);
  } else {
    print(ctx.os(),
          "no fixed point within %zu epochs (final prevalence %.3f)\n",
          series.points.size(), series.final_prevalence);
  }
}

int write_series_file(ScenarioContext& ctx, const std::string& name,
                      const std::string& title,
                      std::span<const agents::EpochSeries> runs) {
  const std::string path = ctx.out_dir + "/" + name;
  std::ostringstream doc;
  agents::write_agents_json(doc, title, runs);
  doc << "\n";
  if (!core::write_text_file(path, doc.str())) {
    print(ctx.os(), "error: cannot write %s\n", path.c_str());
    return 1;
  }
  print(ctx.os(), "wrote %s (schema fairswap.agents.v1)\n", path.c_str());
  return 0;
}

int scenario_equilibrium(ScenarioContext& ctx) {
  banner(ctx.os(), "Adaptive agents: sharing equilibrium");
  core::ExperimentConfig cfg;
  if (!agents_config(ctx, "equilibrium", cfg)) return 2;
  // A mixed start inside the sharing basin (see the reading below for
  // what lies outside it); scenario defaults apply only when the caller
  // didn't override.
  if (!ctx.args.has("initial_free_riders")) {
    cfg.agents.initial_free_riders = 0.3;
  }

  print(ctx.os(),
        "%zu nodes, %zu epochs x %zu files, dynamics=%s, revision_rate=%s, "
        "bandwidth_cost=%.0f, policy=%s\n",
        cfg.topology.node_count, cfg.agents.epochs, cfg.agents.files_per_epoch,
        cfg.agents.dynamics.c_str(),
        TextTable::num(cfg.agents.revision_rate, 2).c_str(),
        cfg.agents.bandwidth_cost, cfg.sim.policy.c_str());

  const auto series = agents::run_epoch_game(cfg);
  print_series(ctx, series);
  print(ctx.os(),
        "\nreading: the sharing norm is bistable under imitation. From "
        "moderate free-rider prevalence, paid first-hop income beats the "
        "bandwidth cost and the population converges to (nearly) full "
        "sharing — try initial_free_riders=0.5 to watch the other basin: "
        "with most routes refused, income concentrates so hard that the "
        "median sharer loses money and imitation tips the network into "
        "collapse. Incentives sustain sharing; they don't resurrect it "
        "(the network-effect result of 'You Share, I Share'). The Gini "
        "columns show fairness once behavior, not just topology, is "
        "endogenous.\n");
  return write_series_file(ctx, "agents_equilibrium.json", "equilibrium",
                           {&series, 1});
}

int scenario_invasion(ScenarioContext& ctx) {
  banner(ctx.os(), "Adaptive agents: free-rider invasion vs incentives");
  core::ExperimentConfig cfg;
  if (!agents_config(ctx, "invasion", cfg)) return 2;
  if (!ctx.args.has("initial_free_riders")) {
    cfg.agents.initial_free_riders = 0.1;
  }
  if (!ctx.args.has("dynamics")) cfg.agents.dynamics = "best-response";

  // Both regimes play on one built overlay: the epoch loops reuse its
  // compiled router and edge-ledger arenas across every epoch of both
  // runs (Simulation::reset — nothing is rebuilt).
  const overlay::Topology topo = core::build_topology(cfg);

  core::ExperimentConfig paid = cfg;
  paid.label = "paid (" + cfg.sim.policy + ")";
  core::ExperimentConfig ablated = cfg;
  ablated.sim.policy = "none";
  ablated.label = "no-payment";

  std::vector<agents::EpochSeries> runs;
  for (const auto* regime : {&paid, &ablated}) {
    print(ctx.os(), "\nrunning %s: %zu epochs x %zu files, dynamics=%s, "
                    "initial free riders %.2f...\n",
          regime->label.c_str(), regime->agents.epochs,
          regime->agents.files_per_epoch, regime->agents.dynamics.c_str(),
          regime->agents.initial_free_riders);
    ctx.os().flush();
    agents::EpochDriver driver(topo, *regime);
    runs.push_back(driver.run());
    print_series(ctx, runs.back());
  }

  const double initial = cfg.agents.initial_free_riders;
  const double paid_end = runs[0].final_prevalence;
  const double ablated_end = runs[1].final_prevalence;
  const char* paid_verdict =
      paid_end <= initial / 2 ? "invasion repelled" : "invasion NOT repelled";
  const char* ablated_verdict =
      ablated_end >= 0.99 ? "free-riding spread to fixation"
      : ablated_end > initial
          ? "free-riding spreading toward fixation (raise epochs=)"
          : "free-riding NOT spreading";
  print(ctx.os(),
        "\nverdict: with payments, final free-rider prevalence %.3f — %s; "
        "with the policy ablated, %.3f — %s. SWAP's bandwidth incentives "
        "are what keeps sharing an evolutionarily stable strategy.\n",
        paid_end, paid_verdict, ablated_end, ablated_verdict);
  return write_series_file(ctx, "agents_invasion.json", "invasion", runs);
}

}  // namespace

void register_agent_scenarios() {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  registry.add({"equilibrium",
                "epoch-based strategy evolution to a sharing equilibrium "
                "(agents extension)",
                0, &scenario_equilibrium, kAgentKeys});
  registry.add({"invasion",
                "free-rider invasion, payments on vs ablated (agents "
                "extension)",
                0, &scenario_invasion, kAgentKeys});
}

}  // namespace fairswap::harness
