// Chunk placement: which nodes are responsible for which addresses.
//
// The paper's rule is the simplest possible: "we assume that only the node
// closest to a data chunk's address is storing that chunk". Real Swarm
// replicates within the neighborhood; we support a redundancy parameter so
// the replication ablation can quantify the difference.
#pragma once

#include <cstdint>
#include <vector>

#include "common/address.hpp"
#include "overlay/topology.hpp"

namespace fairswap::storage {

/// Placement policy parameters.
struct PlacementConfig {
  /// Number of closest nodes storing each chunk. 1 = paper's rule.
  std::size_t redundancy{1};
};

/// Computes storer sets over a topology.
class Placement {
 public:
  Placement(const overlay::Topology& topo, PlacementConfig config) noexcept;

  /// The primary storer (globally closest node) — O(bits).
  [[nodiscard]] overlay::NodeIndex primary(Address chunk) const noexcept;

  /// The `redundancy` closest nodes, ascending by XOR distance — O(n log n),
  /// intended for placement analysis, not hot loops.
  [[nodiscard]] std::vector<overlay::NodeIndex> storers(Address chunk) const;

  /// True if `node` is among the storers of `chunk`.
  [[nodiscard]] bool is_storer(overlay::NodeIndex node, Address chunk) const;

  [[nodiscard]] const PlacementConfig& config() const noexcept {
    return config_;
  }

  /// Distribution analysis: how many distinct chunks (from a uniform
  /// census over the whole address space) each node is primary storer of.
  /// Exposes the load skew that placement by closest-node induces.
  [[nodiscard]] std::vector<std::uint64_t> primary_load_census() const;

 private:
  const overlay::Topology* topo_;
  PlacementConfig config_;
};

}  // namespace fairswap::storage
