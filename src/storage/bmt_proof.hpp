// BMT inclusion proofs.
//
// Because a chunk's address is the root of a binary Merkle tree over its
// 128 segments, a node can prove possession of a chunk by revealing one
// segment plus its log2(128) = 7 sibling hashes — the primitive Swarm's
// storage incentives build on (proof of custody in the redistribution
// game). The proof verifies against the chunk address alone.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/chunk.hpp"
#include "storage/keccak.hpp"

namespace fairswap::storage {

/// An inclusion proof for one 32-byte segment of a chunk.
struct BmtProof {
  /// Which of the 128 segments is proven.
  std::size_t segment_index{0};
  /// The segment's bytes (zero-padded if beyond the payload).
  std::array<std::uint8_t, kRefSize> segment{};
  /// Sibling hashes from leaf level to the root (7 entries).
  std::vector<Digest> siblings;
  /// The chunk's span, needed for the final keccak(span || root) step.
  std::uint64_t span{0};
};

/// Number of sibling hashes in a valid proof (log2 of the segment count).
inline constexpr std::size_t kBmtProofDepth = 7;

/// Builds the inclusion proof for `segment_index` of a chunk payload.
/// Precondition: segment_index < kBranches (128).
[[nodiscard]] BmtProof bmt_prove(std::span<const std::uint8_t> payload,
                                 std::uint64_t span, std::size_t segment_index);

/// Verifies a proof against a chunk address (as produced by
/// bmt_chunk_address). False on wrong segment data, wrong position,
/// wrong span, or malformed sibling path.
[[nodiscard]] bool bmt_verify(const Digest& chunk_address,
                              const BmtProof& proof);

}  // namespace fairswap::storage
