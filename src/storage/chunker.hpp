// File chunker: splits arbitrary data into the Swarm chunk tree.
//
// Data is cut into 4KB leaf chunks; every 128 leaf references are packed
// into an intermediate chunk, recursively, until a single root reference
// remains. "When a Swarm node downloads a file, it has to contact one node
// ... for each of the file's chunks" (paper §III-B) — the chunk count the
// workload generator randomizes is exactly the size of this tree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/chunk.hpp"

namespace fairswap::storage {

/// The result of chunking one file.
struct ChunkTree {
  /// All chunks, leaves first, then intermediate levels, root last.
  std::vector<Chunk> chunks;
  /// Reference (content address) of the root chunk; addresses the file.
  Digest root{};
  /// Number of leaf (data) chunks.
  std::size_t leaf_count{0};
  /// Tree depth (1 for a single-chunk file).
  std::size_t depth{0};
};

/// Splits `data` into a Swarm chunk tree. Empty data yields a single empty
/// data chunk.
[[nodiscard]] ChunkTree chunk_data(std::span<const std::uint8_t> data);

/// Number of leaf chunks a file of `size` bytes produces.
[[nodiscard]] std::size_t leaf_chunks_for_size(std::uint64_t size) noexcept;

/// Total chunks (leaves + intermediates + root) for a file of `size` bytes.
[[nodiscard]] std::size_t total_chunks_for_size(std::uint64_t size) noexcept;

/// Reassembles the original data from a chunk tree (inverse of chunk_data);
/// used by round-trip tests and the quickstart example.
[[nodiscard]] std::vector<std::uint8_t> reassemble(const ChunkTree& tree);

}  // namespace fairswap::storage
