#include "storage/postage.hpp"

#include <cassert>

namespace fairswap::storage {

BatchId PostageOffice::buy_batch(std::uint32_t owner, std::uint8_t depth,
                                 Token value_per_chunk) {
  assert(!value_per_chunk.negative());
  Batch batch;
  batch.id = static_cast<BatchId>(batches_.size());
  batch.owner = owner;
  batch.depth = depth;
  batch.value_per_chunk = value_per_chunk;
  batch.remaining_value = value_per_chunk;
  purchased_ += value_per_chunk * static_cast<Token::rep>(batch.capacity());
  batches_.push_back(batch);
  return batch.id;
}

std::optional<Stamp> PostageOffice::stamp(BatchId id, Address chunk) {
  if (id >= batches_.size()) return std::nullopt;
  Batch& batch = batches_[id];
  if (batch.exhausted() || batch.expired()) return std::nullopt;
  Stamp s{id, chunk, batch.stamped};
  ++batch.stamped;
  return s;
}

bool PostageOffice::valid(const Stamp& stamp) const {
  const Batch* batch = find(stamp.batch);
  if (batch == nullptr) return false;
  return stamp.index < batch->stamped && !batch->expired();
}

Token PostageOffice::tick(Token amount) {
  assert(!amount.negative());
  Token collected;
  for (Batch& batch : batches_) {
    if (batch.expired() || batch.stamped == 0) continue;
    const Token drain =
        amount < batch.remaining_value ? amount : batch.remaining_value;
    batch.remaining_value -= drain;
    collected += drain * static_cast<Token::rep>(batch.stamped);
  }
  pot_ += collected;
  return collected;
}

Token PostageOffice::collect_pot() {
  const Token out = pot_;
  pot_ = Token(0);
  return out;
}

const Batch* PostageOffice::find(BatchId id) const {
  if (id >= batches_.size()) return nullptr;
  return &batches_[id];
}

}  // namespace fairswap::storage
