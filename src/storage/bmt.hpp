// BMT — Swarm's Binary Merkle Tree chunk hash.
//
// A chunk's payload is zero-padded to 4096 bytes and split into 128
// 32-byte segments; adjacent segments are pairwise keccak256-hashed up a
// 7-level binary tree. The chunk address is keccak256(span || root), where
// span is the 64-bit little-endian count of data bytes the chunk
// represents. This matches the Swarm specification ("The Book of Swarm",
// §7.3.1) and the bee implementation.
#pragma once

#include <cstdint>
#include <span>

#include "storage/keccak.hpp"

namespace fairswap::storage {

/// BMT root hash of a payload (zero-padded to 4096 bytes). Payloads longer
/// than 4096 bytes are invalid; the excess is ignored in release builds
/// and asserted in debug builds.
[[nodiscard]] Digest bmt_root(std::span<const std::uint8_t> payload);

/// Full Swarm chunk address: keccak256(span_le64 || bmt_root(payload)).
[[nodiscard]] Digest bmt_chunk_address(std::span<const std::uint8_t> payload,
                                       std::uint64_t span);

}  // namespace fairswap::storage
