#include "storage/store.hpp"

namespace fairswap::storage {

ChunkStore::ChunkStore(std::size_t cache_capacity)
    : capacity_(cache_capacity) {}

void ChunkStore::store_authoritative(Address chunk) {
  owned_.emplace(chunk, 0);
  ++stats_.insertions;
}

void ChunkStore::touch(std::list<Address>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void ChunkStore::cache(Address chunk) {
  if (capacity_ == 0 || owned_.count(chunk)) return;
  const auto it = lru_map_.find(chunk);
  if (it != lru_map_.end()) {
    touch(it->second);
    return;
  }
  lru_.push_front(chunk);
  lru_map_[chunk] = lru_.begin();
  ++stats_.insertions;
  if (lru_map_.size() > capacity_) {
    const Address victim = lru_.back();
    lru_.pop_back();
    lru_map_.erase(victim);
    ++stats_.evictions;
  }
}

bool ChunkStore::lookup(Address chunk) {
  if (owned_.count(chunk)) {
    ++stats_.hits;
    return true;
  }
  const auto it = lru_map_.find(chunk);
  if (it != lru_map_.end()) {
    touch(it->second);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool ChunkStore::contains(Address chunk) const {
  return owned_.count(chunk) > 0 || lru_map_.count(chunk) > 0;
}

}  // namespace fairswap::storage
