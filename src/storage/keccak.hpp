// Keccak-256 — the hash underlying Swarm's content addressing.
//
// This is the *original* Keccak with multi-rate padding (0x01), as used by
// Ethereum and Swarm, not NIST SHA3-256 (0x06 padding). Implemented from
// the Keccak reference specification; tested against the well-known
// Ethereum vectors (empty string, "abc", ...).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace fairswap::storage {

/// A 32-byte digest.
using Digest = std::array<std::uint8_t, 32>;

/// One-shot Keccak-256 of a byte span.
[[nodiscard]] Digest keccak256(std::span<const std::uint8_t> data);

/// Convenience overload for string data.
[[nodiscard]] Digest keccak256(const std::string& data);

/// Incremental hasher (absorb/finalize). Useful for hashing
/// span-prefixed chunk content without concatenation copies.
class Keccak256 {
 public:
  Keccak256() noexcept;

  /// Absorbs more input. May be called repeatedly.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::uint8_t* data, std::size_t len) noexcept;

  /// Finalizes and returns the digest. The hasher must not be reused
  /// afterwards (reset() first).
  [[nodiscard]] Digest finalize() noexcept;

  /// Returns the hasher to its initial state.
  void reset() noexcept;

 private:
  void absorb_block() noexcept;
  void permute() noexcept;

  static constexpr std::size_t kRateBytes = 136;  // 1088-bit rate

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, kRateBytes> buffer_{};
  std::size_t buffered_{0};
};

/// Renders a digest as lowercase hex.
[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace fairswap::storage
