#include "storage/bmt_proof.hpp"

#include <cassert>
#include <cstring>

namespace fairswap::storage {

namespace {

/// Hashes the concatenation of two 32-byte nodes.
Digest hash_pair(const Digest& left, const Digest& right) {
  Keccak256 h;
  h.update(left);
  h.update(right);
  return h.finalize();
}

}  // namespace

BmtProof bmt_prove(std::span<const std::uint8_t> payload, std::uint64_t span,
                   std::size_t segment_index) {
  assert(segment_index < kBranches);
  BmtProof proof;
  proof.segment_index = segment_index;
  proof.span = span;

  // Materialize the padded leaf level.
  std::array<Digest, kBranches> level{};
  const std::size_t len =
      payload.size() < kChunkSize ? payload.size() : kChunkSize;
  for (std::size_t seg = 0; seg < kBranches; ++seg) {
    const std::size_t off = seg * kRefSize;
    if (off < len) {
      const std::size_t take = std::min(kRefSize, len - off);
      std::memcpy(level[seg].data(), payload.data() + off, take);
    }
  }
  proof.segment = level[segment_index];

  // Walk up the tree, collecting the sibling at every level.
  std::size_t width = kBranches;
  std::size_t index = segment_index;
  while (width > 1) {
    proof.siblings.push_back(level[index ^ 1]);
    for (std::size_t i = 0; i < width / 2; ++i) {
      level[i] = hash_pair(level[2 * i], level[2 * i + 1]);
    }
    width /= 2;
    index /= 2;
  }
  assert(proof.siblings.size() == kBmtProofDepth);
  return proof;
}

bool bmt_verify(const Digest& chunk_address, const BmtProof& proof) {
  if (proof.siblings.size() != kBmtProofDepth) return false;
  if (proof.segment_index >= kBranches) return false;

  Digest node = proof.segment;
  std::size_t index = proof.segment_index;
  for (const Digest& sibling : proof.siblings) {
    node = (index & 1) ? hash_pair(sibling, node) : hash_pair(node, sibling);
    index /= 2;
  }

  // Recompute the chunk address from span || root.
  Keccak256 h;
  std::array<std::uint8_t, 8> span_le{};
  for (std::size_t i = 0; i < 8; ++i) {
    span_le[i] = static_cast<std::uint8_t>(proof.span >> (8 * i));
  }
  h.update(span_le);
  h.update(node);
  return h.finalize() == chunk_address;
}

}  // namespace fairswap::storage
