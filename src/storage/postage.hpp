// Postage stamps — how uploads pay for storage.
//
// In Swarm, an uploader buys a *postage batch* (an on-chain purchase of
// 2^depth chunk slots at a given per-chunk balance) and attaches a stamp
// from the batch to every uploaded chunk. Storer nodes use stamp value to
// prioritize what to keep, and the batch balances drain over time into
// the redistribution pot that the storage game (incentives/storage_game)
// pays out. This module models the batch store: purchase, stamping with
// capacity enforcement, validity checks, and time-based drain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.hpp"
#include "common/token.hpp"

namespace fairswap::storage {

/// Identifier of a postage batch.
using BatchId = std::uint32_t;

/// A purchased batch: capacity 2^depth chunks, each backed by
/// `value_per_chunk` of balance that drains at `drain_per_tick`.
struct Batch {
  BatchId id{0};
  std::uint32_t owner{0};          ///< purchasing node (opaque to this module)
  std::uint8_t depth{16};          ///< capacity = 2^depth chunks
  Token value_per_chunk;           ///< initial per-chunk balance
  Token remaining_value;           ///< current per-chunk balance (drains)
  std::uint64_t stamped{0};        ///< chunks stamped so far

  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return std::uint64_t{1} << depth;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return stamped >= capacity();
  }
  [[nodiscard]] bool expired() const noexcept {
    return remaining_value.is_zero();
  }
};

/// A stamp attached to one uploaded chunk.
struct Stamp {
  BatchId batch{0};
  Address chunk{};
  std::uint64_t index{0};  ///< position within the batch
};

/// The batch registry ("postage office"). Purchases mint batches, stamping
/// consumes slots, ticking drains balances into a collectable pot — the
/// revenue stream the redistribution game distributes.
class PostageOffice {
 public:
  PostageOffice() = default;

  /// Purchases a batch; total cost = 2^depth * value_per_chunk (tracked in
  /// total_purchased()). Returns its id.
  BatchId buy_batch(std::uint32_t owner, std::uint8_t depth,
                    Token value_per_chunk);

  /// Stamps a chunk from the batch. Fails (nullopt) if the batch is
  /// unknown, exhausted, or expired.
  std::optional<Stamp> stamp(BatchId batch, Address chunk);

  /// True if the stamp refers to a live batch and an issued slot.
  [[nodiscard]] bool valid(const Stamp& stamp) const;

  /// Drains every live batch's per-chunk balance by `amount`, crediting
  /// (drained * stamped-chunks) into the redistribution pot. Returns the
  /// newly collected revenue.
  Token tick(Token amount);

  /// Takes the accumulated pot (e.g. one game round's payout), resetting
  /// it to zero.
  Token collect_pot();

  [[nodiscard]] const Batch* find(BatchId id) const;
  [[nodiscard]] std::size_t batch_count() const noexcept {
    return batches_.size();
  }
  [[nodiscard]] Token pot() const noexcept { return pot_; }
  [[nodiscard]] Token total_purchased() const noexcept { return purchased_; }

 private:
  std::vector<Batch> batches_;
  Token pot_;
  Token purchased_;
};

}  // namespace fairswap::storage
