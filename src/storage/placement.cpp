#include "storage/placement.hpp"

#include <algorithm>

namespace fairswap::storage {

Placement::Placement(const overlay::Topology& topo,
                     PlacementConfig config) noexcept
    : topo_(&topo), config_(config) {}

overlay::NodeIndex Placement::primary(Address chunk) const noexcept {
  return topo_->closest_node(chunk);
}

std::vector<overlay::NodeIndex> Placement::storers(Address chunk) const {
  std::vector<overlay::NodeIndex> nodes(topo_->node_count());
  for (overlay::NodeIndex i = 0; i < nodes.size(); ++i) nodes[i] = i;
  const std::size_t r = std::min(config_.redundancy, nodes.size());
  std::partial_sort(nodes.begin(),
                    nodes.begin() + static_cast<std::ptrdiff_t>(r),
                    nodes.end(),
                    [&](overlay::NodeIndex a, overlay::NodeIndex b) {
                      const auto da = xor_distance(topo_->address_of(a), chunk);
                      const auto db = xor_distance(topo_->address_of(b), chunk);
                      return da != db ? da < db : a < b;
                    });
  nodes.resize(r);
  return nodes;
}

bool Placement::is_storer(overlay::NodeIndex node, Address chunk) const {
  if (config_.redundancy == 1) return primary(chunk) == node;
  const auto s = storers(chunk);
  return std::find(s.begin(), s.end(), node) != s.end();
}

std::vector<std::uint64_t> Placement::primary_load_census() const {
  std::vector<std::uint64_t> load(topo_->node_count(), 0);
  const std::uint64_t space = topo_->space().size();
  for (std::uint64_t a = 0; a < space; ++a) {
    ++load[primary(Address{static_cast<AddressValue>(a)})];
  }
  return load;
}

}  // namespace fairswap::storage
