#include "storage/chunk.hpp"

#include <cassert>

#include "storage/bmt.hpp"

namespace fairswap::storage {

Chunk::Chunk(std::vector<std::uint8_t> payload, std::uint64_t span)
    : payload_(std::move(payload)), span_(span) {
  assert(payload_.size() <= kChunkSize);
}

Chunk Chunk::data_chunk(std::vector<std::uint8_t> payload) {
  const auto span = static_cast<std::uint64_t>(payload.size());
  return Chunk(std::move(payload), span);
}

const Digest& Chunk::address() const {
  if (!address_valid_) {
    cached_address_ = bmt_chunk_address(payload_, span_);
    address_valid_ = true;
  }
  return cached_address_;
}

Address Chunk::overlay_address(const AddressSpace& space) const {
  return digest_to_overlay(address(), space);
}

Address digest_to_overlay(const Digest& d, const AddressSpace& space) {
  // Take the top `bits` bits, big-endian: byte 0 contributes the most
  // significant bits, mirroring how Swarm compares 256-bit addresses.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < 5; ++i) {  // 40 bits is plenty for bits <= 32
    acc = (acc << 8) | d[i];
  }
  const int shift = 40 - space.bits();
  return Address{static_cast<AddressValue>(acc >> shift)};
}

}  // namespace fairswap::storage
