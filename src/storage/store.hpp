// Per-node chunk storage: an unbounded authoritative store (for chunks a
// node is responsible for) plus an optional bounded LRU cache (for chunks
// it forwarded — the §V caching extension).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/address.hpp"

namespace fairswap::storage {

/// Counters describing store effectiveness.
struct StoreStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t insertions{0};
  std::uint64_t evictions{0};

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// A node-local chunk index keyed by overlay address. The simulator does
/// not need payload bytes to measure fairness, so the store tracks
/// addresses only; the `storage::Chunk` pipeline is exercised by the
/// chunker tests and examples instead.
class ChunkStore {
 public:
  /// `cache_capacity` bounds the LRU cache; 0 disables caching entirely
  /// (the paper's baseline behaviour).
  explicit ChunkStore(std::size_t cache_capacity = 0);

  /// Marks this node the authoritative storer of `chunk` (never evicted).
  void store_authoritative(Address chunk);

  /// Inserts into the LRU cache (no-op when capacity is 0). Authoritative
  /// entries are not duplicated into the cache.
  void cache(Address chunk);

  /// True if the chunk is available locally (authoritative or cached);
  /// updates hit/miss counters and LRU recency.
  bool lookup(Address chunk);

  /// Availability check without touching counters or recency.
  [[nodiscard]] bool contains(Address chunk) const;

  [[nodiscard]] std::size_t authoritative_count() const noexcept {
    return owned_.size();
  }
  [[nodiscard]] std::size_t cached_count() const noexcept {
    return lru_map_.size();
  }
  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }

 private:
  void touch(std::list<Address>::iterator it);

  std::size_t capacity_;
  // fairswap-lint: allow(unordered-container) -- has()/owns() membership
  // lookup only; eviction order lives in the lru_ list, not hash order.
  std::unordered_map<Address, char> owned_;
  std::list<Address> lru_;  // front = most recent
  // fairswap-lint: allow(unordered-container) -- address->LRU-position
  // lookup only, never enumerated.
  std::unordered_map<Address, std::list<Address>::iterator> lru_map_;
  StoreStats stats_;
};

}  // namespace fairswap::storage
