#include "storage/bmt.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "storage/chunk.hpp"

namespace fairswap::storage {

Digest bmt_root(std::span<const std::uint8_t> payload) {
  assert(payload.size() <= kChunkSize);
  // Level 0: 128 segments of 32 bytes, zero padded.
  std::array<Digest, kBranches> level{};
  const std::size_t len = std::min(payload.size(), kChunkSize);
  for (std::size_t seg = 0; seg < kBranches; ++seg) {
    const std::size_t off = seg * kRefSize;
    if (off < len) {
      const std::size_t take = std::min(kRefSize, len - off);
      std::memcpy(level[seg].data(), payload.data() + off, take);
    }
  }
  // Pairwise reduction: 128 -> 64 -> ... -> 1.
  std::size_t width = kBranches;
  std::array<std::uint8_t, 2 * kRefSize> pair{};
  while (width > 1) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      std::memcpy(pair.data(), level[2 * i].data(), kRefSize);
      std::memcpy(pair.data() + kRefSize, level[2 * i + 1].data(), kRefSize);
      level[i] = keccak256(pair);
    }
    width /= 2;
  }
  return level[0];
}

Digest bmt_chunk_address(std::span<const std::uint8_t> payload,
                         std::uint64_t span) {
  const Digest root = bmt_root(payload);
  Keccak256 h;
  std::array<std::uint8_t, 8> span_le{};
  for (std::size_t i = 0; i < 8; ++i) {
    span_le[i] = static_cast<std::uint8_t>(span >> (8 * i));
  }
  h.update(span_le);
  h.update(root);
  return h.finalize();
}

}  // namespace fairswap::storage
