#include "storage/keccak.hpp"

#include <bit>
#include <cstring>

namespace fairswap::storage {

namespace {

constexpr std::array<std::uint64_t, 24> kRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr std::array<int, 25> kRotations = {
    0,  1,  62, 28, 27,  // x = 0..4, y = 0
    36, 44, 6,  55, 20,  // y = 1
    3,  10, 43, 25, 39,  // y = 2
    41, 45, 15, 21, 8,   // y = 3
    18, 2,  61, 56, 14}; // y = 4

}  // namespace

Keccak256::Keccak256() noexcept = default;

void Keccak256::reset() noexcept {
  state_.fill(0);
  buffer_.fill(0);
  buffered_ = 0;
}

void Keccak256::update(std::span<const std::uint8_t> data) noexcept {
  update(data.data(), data.size());
}

void Keccak256::update(const std::uint8_t* data, std::size_t len) noexcept {
  while (len > 0) {
    const std::size_t take = std::min(len, kRateBytes - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == kRateBytes) {
      absorb_block();
      buffered_ = 0;
    }
  }
}

Digest Keccak256::finalize() noexcept {
  // Multi-rate padding: 0x01 ... 0x80 (original Keccak, as used by
  // Ethereum/Swarm).
  std::memset(buffer_.data() + buffered_, 0, kRateBytes - buffered_);
  buffer_[buffered_] = 0x01;
  buffer_[kRateBytes - 1] |= 0x80;
  absorb_block();

  Digest out{};
  // Squeeze: 32 bytes from the little-endian lanes.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t lane = state_[i];
    for (std::size_t b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<std::uint8_t>(lane >> (8 * b));
    }
  }
  return out;
}

void Keccak256::absorb_block() noexcept {
  for (std::size_t i = 0; i < kRateBytes / 8; ++i) {
    std::uint64_t lane = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      lane |= static_cast<std::uint64_t>(buffer_[i * 8 + b]) << (8 * b);
    }
    state_[i] ^= lane;
  }
  permute();
}

void Keccak256::permute() noexcept {
  auto& a = state_;
  for (int round = 0; round < 24; ++round) {
    // Theta.
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[static_cast<std::size_t>(x)] ^
             a[static_cast<std::size_t>(x + 5)] ^
             a[static_cast<std::size_t>(x + 10)] ^
             a[static_cast<std::size_t>(x + 15)] ^
             a[static_cast<std::size_t>(x + 20)];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[static_cast<std::size_t>(x + 5 * y)] ^= d;
    }
    // Rho + Pi.
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = std::rotl(a[static_cast<std::size_t>(src)],
                           kRotations[static_cast<std::size_t>(src)]);
      }
    }
    // Chi.
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        a[static_cast<std::size_t>(x + 5 * y)] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota.
    a[0] ^= kRoundConstants[static_cast<std::size_t>(round)];
  }
}

Digest keccak256(std::span<const std::uint8_t> data) {
  Keccak256 h;
  h.update(data);
  return h.finalize();
}

Digest keccak256(const std::string& data) {
  return keccak256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::string to_hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t byte : d) {
    out += kHex[byte >> 4];
    out += kHex[byte & 0x0f];
  }
  return out;
}

}  // namespace fairswap::storage
