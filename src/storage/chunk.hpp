// The Swarm chunk model: fixed-size 4KB content units addressed on the
// same address space as nodes (paper §III-A: "All content in Swarm, fixed
// size chunks of 4KB, are addressed on the same address space as nodes").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/address.hpp"
#include "storage/keccak.hpp"

namespace fairswap::storage {

/// Maximum chunk payload in bytes.
inline constexpr std::size_t kChunkSize = 4096;
/// Reference (digest) size in bytes.
inline constexpr std::size_t kRefSize = 32;
/// Branching factor of the Swarm chunk tree: how many child references fit
/// in one intermediate chunk.
inline constexpr std::size_t kBranches = kChunkSize / kRefSize;  // 128

/// A content-addressed chunk: payload plus the span (total number of data
/// bytes reachable through this chunk — for a data chunk, its length; for
/// an intermediate chunk, the subtree size).
class Chunk {
 public:
  Chunk() = default;
  Chunk(std::vector<std::uint8_t> payload, std::uint64_t span);

  /// Builds a leaf (data) chunk; span == payload size.
  [[nodiscard]] static Chunk data_chunk(std::vector<std::uint8_t> payload);

  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return payload_;
  }
  [[nodiscard]] std::uint64_t span() const noexcept { return span_; }
  [[nodiscard]] std::size_t size() const noexcept { return payload_.size(); }

  /// The chunk's content address: BMT hash over the payload keyed with the
  /// span (see bmt.hpp). Computed lazily and cached.
  [[nodiscard]] const Digest& address() const;

  /// Projects the 256-bit content address onto a small overlay address
  /// space by taking the top `space.bits()` bits — how the simulator maps
  /// real chunks into its 16-bit experiment space.
  [[nodiscard]] Address overlay_address(const AddressSpace& space) const;

 private:
  std::vector<std::uint8_t> payload_;
  std::uint64_t span_{0};
  mutable Digest cached_address_{};
  mutable bool address_valid_{false};
};

/// Projects any 32-byte digest onto an overlay address space (top bits,
/// big-endian byte order).
[[nodiscard]] Address digest_to_overlay(const Digest& d,
                                        const AddressSpace& space);

}  // namespace fairswap::storage
