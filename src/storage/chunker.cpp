#include "storage/chunker.hpp"

#include <cstring>

namespace fairswap::storage {

std::size_t leaf_chunks_for_size(std::uint64_t size) noexcept {
  if (size == 0) return 1;
  return static_cast<std::size_t>((size + kChunkSize - 1) / kChunkSize);
}

std::size_t total_chunks_for_size(std::uint64_t size) noexcept {
  std::size_t level = leaf_chunks_for_size(size);
  std::size_t total = level;
  while (level > 1) {
    level = (level + kBranches - 1) / kBranches;
    total += level;
  }
  return total;
}

ChunkTree chunk_data(std::span<const std::uint8_t> data) {
  ChunkTree tree;

  // Leaf level.
  std::vector<std::size_t> level_begin;  // index of first chunk per level
  level_begin.push_back(0);
  if (data.empty()) {
    tree.chunks.push_back(Chunk::data_chunk({}));
  } else {
    for (std::size_t off = 0; off < data.size(); off += kChunkSize) {
      const std::size_t take = std::min(kChunkSize, data.size() - off);
      std::vector<std::uint8_t> payload(
          data.begin() + static_cast<std::ptrdiff_t>(off),
          data.begin() + static_cast<std::ptrdiff_t>(off + take));
      tree.chunks.push_back(Chunk::data_chunk(std::move(payload)));
    }
  }
  tree.leaf_count = tree.chunks.size();
  tree.depth = 1;

  // Intermediate levels: pack child references (32-byte addresses) into
  // parent chunks; a parent's span is the sum of its children's spans.
  std::size_t begin = 0;
  std::size_t count = tree.chunks.size();
  while (count > 1) {
    const std::size_t next_begin = tree.chunks.size();
    for (std::size_t i = 0; i < count; i += kBranches) {
      const std::size_t kids = std::min(kBranches, count - i);
      std::vector<std::uint8_t> payload;
      payload.reserve(kids * kRefSize);
      std::uint64_t span = 0;
      for (std::size_t c = 0; c < kids; ++c) {
        const Chunk& child = tree.chunks[begin + i + c];
        const Digest& ref = child.address();
        payload.insert(payload.end(), ref.begin(), ref.end());
        span += child.span();
      }
      tree.chunks.emplace_back(std::move(payload), span);
    }
    begin = next_begin;
    count = tree.chunks.size() - next_begin;
    ++tree.depth;
  }

  tree.root = tree.chunks.back().address();
  return tree;
}

std::vector<std::uint8_t> reassemble(const ChunkTree& tree) {
  std::vector<std::uint8_t> out;
  // Leaves are stored first and in order; concatenating them re-creates
  // the original data.
  for (std::size_t i = 0; i < tree.leaf_count; ++i) {
    const auto payload = tree.chunks[i].payload();
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

}  // namespace fairswap::storage
